//! Kernel-space fuzzer: seeded random `.iolb` generation plus an
//! end-to-end differential soundness oracle.
//!
//! The pipeline (parse → certify → σ/hourglass bounds → CDAG → miss
//! curves → tiled upper bounds) is exercised by hand-written kernels; this
//! crate closes the generality gap by generating *valid* random affine
//! programs ([`gen`]), pushing each through the whole pipeline, and
//! asserting the cross-layer invariants that make the soundness chain
//! `lower bound ≤ OPT curve ≤ any legal schedule` hold ([`oracle`]). A
//! violation is minimized to a small reproducer ([`shrink`]) suitable for
//! committing to `fuzz/corpus/`, which `cargo test` replays
//! deterministically.
//!
//! Everything is reproducible from a single `u64` seed: case `i` of run
//! `seed` depends only on `(seed, i)` — no wall-clock, no ambient
//! randomness — and the emitted JSON report carries the seed as a
//! required field so CI replays are bitwise-deterministic.

pub mod gen;
pub mod inject;
pub mod oracle;
pub mod shrink;

pub use gen::{generate_case, CaseSpec, GenConfig};
pub use inject::{run_injection, run_injection_matrix, InjectionOutcome, InjectionReport};
pub use oracle::{CaseReport, Oracle, Violation};
pub use shrink::{shrink_case, ShrinkOutcome};

use rayon::prelude::*;

/// One fuzz run's configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Run seed (required everywhere; reported in the JSON).
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Maximum loop-nest depth of generated kernels.
    pub max_dims: u32,
    /// S-grid offsets the oracle sweeps.
    pub s_offsets: Vec<usize>,
    /// Whether the oracle runs the tightness harness per case.
    pub tightness: bool,
}

impl FuzzConfig {
    /// Default configuration for a `(seed, cases)` pair: generator depth 4,
    /// the dense S grid, tightness checks on.
    pub fn new(seed: u64, cases: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            cases,
            max_dims: GenConfig::default().max_dims,
            s_offsets: iolb_bench::sweep::dense_s_offsets(),
            tightness: true,
        }
    }
}

/// One violation found by a run, with its minimized reproducer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Case index within the run (`generate_case(seed, index)`).
    pub case_index: u64,
    /// The (post-shrink) violation.
    pub violation: Violation,
    /// Rendered source of the *original* failing case.
    pub original: String,
    /// Rendered source of the minimized reproducer.
    pub minimized: String,
    /// Statement count of the minimized reproducer.
    pub minimized_stmts: usize,
}

/// Aggregated counters over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzStats {
    /// Total certified statement instances.
    pub instances: u64,
    /// Cases with a derived classical σ-bound.
    pub classical: u64,
    /// Cases with a derived hourglass bound.
    pub hourglass: u64,
    /// Cases the dependence analysis declined.
    pub analysis_skipped: u64,
    /// Cases carrying `schedule { tile … }` directives.
    pub tiled: u64,
    /// Cases where every S of the grid received at least one finite
    /// graph-level engine bound.
    pub engine_covered: u64,
}

/// Full outcome of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The run's configuration (seed included).
    pub config: FuzzConfig,
    /// Aggregated counters.
    pub stats: FuzzStats,
    /// All violations, by ascending case index (empty = clean run).
    pub failures: Vec<FuzzFailure>,
}

/// Runs the fuzzer: generates `config.cases` kernels, checks every oracle
/// invariant on each (in parallel, deterministically — case `i` depends
/// only on `(seed, i)`), and minimizes every failure.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let oracle = Oracle::with(config.s_offsets.clone(), config.tightness);
    let gen_cfg = GenConfig {
        max_dims: config.max_dims,
    };
    let indices: Vec<u64> = (0..config.cases).collect();
    let outcomes: Vec<(u64, CaseSpec, Result<CaseReport, Violation>)> = indices
        .par_iter()
        .map(|&i| {
            let spec = generate_case(config.seed, i, &gen_cfg);
            let res = oracle.check_source(&spec.render());
            (i, spec, res)
        })
        .collect();

    let mut stats = FuzzStats::default();
    let mut failures = Vec::new();
    for (i, spec, res) in outcomes {
        match res {
            Ok(r) => {
                stats.instances += r.instances;
                stats.classical += r.classical as u64;
                stats.hourglass += r.hourglass as u64;
                stats.analysis_skipped += r.analysis_skipped as u64;
                stats.tiled += r.tiled as u64;
                stats.engine_covered += r.engine_covered as u64;
            }
            Err(v) => {
                let shrunk = shrink_case(&spec, &oracle, &v);
                failures.push(FuzzFailure {
                    case_index: i,
                    minimized: shrunk.spec.render(),
                    minimized_stmts: shrunk.spec.num_stmts(),
                    violation: shrunk.violation,
                    original: spec.render(),
                });
            }
        }
    }
    FuzzReport {
        config: config.clone(),
        stats,
        failures,
    }
}

/// Serializes a run report as deterministic JSON (schema
/// `hourglass-iolb/fuzz/v1`). The seed is a required top-level field — a
/// report without it could not be replayed — and nothing volatile (wall
/// time, thread counts) is emitted at all, so identical runs produce
/// byte-identical reports.
pub fn fuzz_report_json(report: &FuzzReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hourglass-iolb/fuzz/v1\",\n");
    out.push_str(&format!("  \"seed\": {},\n", report.config.seed));
    out.push_str(&format!("  \"cases\": {},\n", report.config.cases));
    out.push_str(&format!("  \"max_dims\": {},\n", report.config.max_dims));
    out.push_str(&format!(
        "  \"stats\": {{\"instances\": {}, \"classical_bounds\": {}, \"hourglass_bounds\": {}, \"analysis_skipped\": {}, \"tiled\": {}, \"engine_covered\": {}}},\n",
        report.stats.instances,
        report.stats.classical,
        report.stats.hourglass,
        report.stats.analysis_skipped,
        report.stats.tiled,
        report.stats.engine_covered
    ));
    out.push_str(&format!("  \"violations\": {},\n", report.failures.len()));
    out.push_str("  \"failures\": [\n");
    for (i, f) in report.failures.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"case\": {}, \"invariant\": \"{}\", \"detail\": \"{}\", \"minimized_stmts\": {}, \"minimized\": \"{}\", \"original\": \"{}\"}}{}\n",
            f.case_index,
            esc(f.violation.invariant),
            esc(&f.violation.detail),
            f.minimized_stmts,
            esc(&f.minimized),
            esc(&f.original),
            if i + 1 == report.failures.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64, cases: u64) -> FuzzConfig {
        FuzzConfig {
            s_offsets: vec![0, 2, 8, 32],
            ..FuzzConfig::new(seed, cases)
        }
    }

    #[test]
    fn small_run_is_clean_and_deterministic() {
        let cfg = small_config(42, 12);
        let a = run_fuzz(&cfg);
        assert!(
            a.failures.is_empty(),
            "violations: {:?}",
            a.failures
                .iter()
                .map(|f| (&f.violation.invariant, &f.violation.detail))
                .collect::<Vec<_>>()
        );
        assert!(a.stats.instances > 0);
        let b = run_fuzz(&cfg);
        assert_eq!(fuzz_report_json(&a), fuzz_report_json(&b));
    }

    #[test]
    fn report_json_carries_the_seed_and_balances() {
        let report = run_fuzz(&small_config(7, 3));
        let json = fuzz_report_json(&report);
        assert!(json.contains("\"schema\": \"hourglass-iolb/fuzz/v1\""));
        assert!(json.contains("\"seed\": 7"), "seed is a required field");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
