//! Seeded random generation of *valid* `.iolb` programs.
//!
//! The generator emits a [`CaseSpec`] — a lightweight, shrinkable AST of
//! one kernel — and renders it to DSL text. Validity is established by
//! construction, not by filtering:
//!
//! * every loop variable ranges inside `[0, P)` for its *bounding
//!   parameter* `P` (base loops `0..P`, interior loops `1..P-1`,
//!   triangular loops `outer+1..P`, windowed loops `outer..min(P,
//!   outer+2)`, plus strided and reversed variants), so
//! * every array subscript — a dim `v`, its reversal `P - 1 - v`, a
//!   slack-bounded offset `v ± k`, or a small constant — provably lands
//!   inside the array extent for every instance, at every parameter value
//!   the generator (or the shrinker) can choose, and
//! * `schedule { tile … }` directives only name unit-step forward loops
//!   (the parser's tileability rule).
//!
//! Parameter defaults are never below [`MIN_PARAM`], which is what makes
//! constant subscripts `0..=2` safe. All randomness flows from the
//! caller's `u64` seed through the vendored deterministic `StdRng` —
//! never from wall-clock or ambient entropy — so every case is
//! reproducible from `(seed, case index)` alone.

use rand::prelude::*;
use std::fmt::Write as _;

/// Smallest parameter default the generator (and the shrinker) may use.
/// Constant subscripts are drawn from `0..MIN_PARAM`, so they stay in
/// range for every extent.
pub const MIN_PARAM: i64 = 3;

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum loop-nest depth (clamped to `1..=8` — the schedulable key
    /// domain of the tightness harness).
    pub max_dims: u32,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { max_dims: 4 }
    }
}

/// One generated kernel, in shrinkable form. Bounds and subscripts are
/// kept as rendered DSL text: shrink mutations only ever drop whole
/// statements/reads/directives or pin loops to a single iteration, both
/// of which preserve the in-range-by-construction invariant.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Kernel name (`fz<seed>_<index>`).
    pub name: String,
    /// `(parameter name, default value)`, in declaration order.
    pub params: Vec<(String, i64)>,
    /// Array declarations.
    pub arrays: Vec<ArraySpec>,
    /// `analyze` directive target, when present.
    pub analyze: Option<String>,
    /// `schedule { tile … }` directives: `(loop name, explicit size)`.
    pub tiles: Vec<(String, Option<i64>)>,
    /// Loop-tree body.
    pub body: Vec<StepSpec>,
}

/// One declared array (empty extents = scalar).
#[derive(Debug, Clone)]
pub struct ArraySpec {
    /// Array name.
    pub name: String,
    /// Extents as indices into `CaseSpec::params`.
    pub extents: Vec<usize>,
}

/// One schedule step of the spec tree.
#[derive(Debug, Clone)]
pub enum StepSpec {
    /// A loop with rendered bounds.
    Loop(LoopSpec),
    /// A statement with rendered accesses.
    Stmt(StmtSpec),
}

/// A loop of the spec tree.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Loop-variable name (unique per kernel).
    pub var: String,
    /// Rendered lower bound (`"0"`, `"i0 + 1"`, …).
    pub lo: String,
    /// Rendered exclusive upper bound (`"N"`, `"min(N, i0 + 2)"`, …).
    pub hi: String,
    /// Step (1 or 2).
    pub step: i64,
    /// Reverse iteration.
    pub reverse: bool,
    /// Pinned to (at most) its first iteration by the shrinker.
    pub pinned: bool,
    /// Body steps.
    pub body: Vec<StepSpec>,
}

impl LoopSpec {
    /// Whether `schedule { tile … }` may name this loop.
    pub fn tileable(&self) -> bool {
        self.step == 1 && !self.reverse
    }

    /// Pins the loop to at most one iteration — its *first* — without
    /// moving the lower bound: `[lo, min(hi…, lo + 1))`. Keeping `lo`
    /// preserves the in-range-by-construction invariant (subscripts like
    /// `v − 1` under an interior loop rely on the loop's lower slack, and
    /// an originally-empty loop stays empty); the extra `min` bound is
    /// plain grammar. Returns false when already pinned.
    pub fn pin(&mut self) -> bool {
        if self.pinned {
            return false;
        }
        let inner = self
            .hi
            .strip_prefix("min(")
            .and_then(|rest| rest.strip_suffix(")"))
            .unwrap_or(&self.hi);
        self.hi = format!("min({inner}, {} + 1)", self.lo);
        self.step = 1;
        self.reverse = false;
        self.pinned = true;
        true
    }
}

/// A statement of the spec tree.
#[derive(Debug, Clone)]
pub struct StmtSpec {
    /// Statement name (unique per kernel).
    pub name: String,
    /// Rendered write accesses (at least one).
    pub writes: Vec<String>,
    /// Rendered read accesses.
    pub reads: Vec<String>,
}

impl CaseSpec {
    /// Total statements in the spec tree.
    pub fn num_stmts(&self) -> usize {
        fn count(steps: &[StepSpec]) -> usize {
            steps
                .iter()
                .map(|s| match s {
                    StepSpec::Stmt(_) => 1,
                    StepSpec::Loop(l) => count(&l.body),
                })
                .sum()
        }
        count(&self.body)
    }

    /// Renders the spec as parseable `.iolb` source.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let params: Vec<&str> = self.params.iter().map(|(n, _)| n.as_str()).collect();
        let _ = writeln!(out, "kernel {}({}) {{", self.name, params.join(", "));
        for a in &self.arrays {
            if a.extents.is_empty() {
                let _ = writeln!(out, "  scalar {};", a.name);
            } else {
                let ext: String = a
                    .extents
                    .iter()
                    .map(|&p| format!("[{}]", self.params[p].0))
                    .collect();
                let _ = writeln!(out, "  array {}{ext};", a.name);
            }
        }
        if let Some(s) = &self.analyze {
            let _ = writeln!(out, "  analyze {s};");
        }
        let ds: Vec<String> = self
            .params
            .iter()
            .map(|(n, v)| format!("{n} = {v}"))
            .collect();
        let _ = writeln!(out, "  default {};", ds.join(", "));
        if !self.tiles.is_empty() {
            let _ = writeln!(out, "  schedule {{");
            for (name, size) in &self.tiles {
                match size {
                    Some(s) => {
                        let _ = writeln!(out, "    tile {name} {s};");
                    }
                    None => {
                        let _ = writeln!(out, "    tile {name};");
                    }
                }
            }
            let _ = writeln!(out, "  }}");
        }
        out.push('\n');
        for step in &self.body {
            render_step(step, 1, &mut out);
        }
        out.push_str("}\n");
        out
    }
}

fn render_step(step: &StepSpec, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match step {
        StepSpec::Stmt(s) => {
            let _ = writeln!(
                out,
                "{pad}{}: {} = op({});",
                s.name,
                s.writes.join(", "),
                s.reads.join(", ")
            );
        }
        StepSpec::Loop(l) => {
            let rev = if l.reverse { "reverse " } else { "" };
            let step_s = if l.step == 1 {
                String::new()
            } else {
                format!(" step {}", l.step)
            };
            let _ = writeln!(
                out,
                "{pad}for {} in {rev}{}..{}{step_s} {{",
                l.var, l.lo, l.hi
            );
            for s in &l.body {
                render_step(s, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// One loop in scope during generation: its variable, bounding parameter,
/// and slack — the variable's value provably sits in
/// `[slack_lo, P - 1 - slack_hi]`.
#[derive(Debug, Clone)]
struct ScopeLoop {
    var: String,
    param: usize,
    slack_lo: i64,
    slack_hi: i64,
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    params: Vec<(String, i64)>,
    arrays: Vec<ArraySpec>,
    scope: Vec<ScopeLoop>,
    stmt_ct: u32,
    loop_ct: u32,
    /// `(name, depth)` per emitted statement — the analyze pick.
    stmt_meta: Vec<(String, usize)>,
    /// Tileable loop names in emission order.
    tileable: Vec<String>,
}

/// Derives the per-case RNG seed from the run seed and the case index
/// (SplitMix64 over the pair, so neighbouring cases share no stream).
pub fn case_seed(seed: u64, index: u64) -> u64 {
    let mut x = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Generates case `index` of run `seed` under `cfg`. Fully deterministic:
/// the same `(seed, index, cfg)` always produces the same spec.
pub fn generate_case(seed: u64, index: u64, cfg: &GenConfig) -> CaseSpec {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(case_seed(seed, index)),
        cfg: GenConfig {
            max_dims: cfg.max_dims.clamp(1, 8),
        },
        params: Vec::new(),
        arrays: Vec::new(),
        scope: Vec::new(),
        stmt_ct: 0,
        loop_ct: 0,
        stmt_meta: Vec::new(),
        tileable: Vec::new(),
    };

    // Parameters: N always, M half the time. Defaults stay small — the
    // oracle runs the full pipeline per case.
    g.params
        .push(("N".to_string(), g.rng.gen_range(MIN_PARAM..=6)));
    if g.rng.gen_bool(0.5) {
        g.params
            .push(("M".to_string(), g.rng.gen_range(MIN_PARAM..=6)));
    }

    // Arrays: 2–4 declarations mixing 2-D, 1-D, and scalars; at least one
    // non-scalar so statements always have an indexable target.
    let n_arrays = g.rng.gen_range(2..=4usize);
    for k in 0..n_arrays {
        let name = format!("{}", (b'A' + k as u8) as char);
        let rank = if k == 0 {
            g.rng.gen_range(1..=2usize)
        } else {
            g.rng.gen_range(0..=2usize)
        };
        let extents: Vec<usize> = (0..rank)
            .map(|_| g.rng.gen_range(0..g.params.len()))
            .collect();
        g.arrays.push(ArraySpec { name, extents });
    }

    let mut body = g.body(0);
    if g.stmt_ct == 0 {
        // Guarantee at least one statement (a kernel of pure empty loops
        // exercises nothing).
        let s = g.stmt();
        body.push(StepSpec::Stmt(s));
    }

    // analyze: usually the deepest statement (the pipeline's own fallback
    // pick), sometimes a random one, sometimes absent.
    let analyze = match g.rng.gen_range(0..10u32) {
        0..=5 => g
            .stmt_meta
            .iter()
            .max_by_key(|(_, d)| *d)
            .map(|(n, _)| n.clone()),
        6..=7 => {
            let i = g.rng.gen_range(0..g.stmt_meta.len());
            Some(g.stmt_meta[i].0.clone())
        }
        _ => None,
    };

    // schedule: tile up to two tileable loops.
    let mut tiles: Vec<(String, Option<i64>)> = Vec::new();
    let tileable = g.tileable.clone();
    for name in tileable {
        if tiles.len() >= 2 {
            break;
        }
        if g.rng.gen_bool(0.35) {
            let size = match g.rng.gen_range(0..5u32) {
                0 => Some(2),
                1 => Some(4),
                _ => None,
            };
            tiles.push((name, size));
        }
    }

    CaseSpec {
        name: format!("fz{seed}_{index}"),
        params: g.params,
        arrays: g.arrays,
        analyze,
        tiles,
        body,
    }
}

impl Gen {
    fn body(&mut self, depth: u32) -> Vec<StepSpec> {
        let items = self.rng.gen_range(1..=2u32);
        let mut out = Vec::new();
        for _ in 0..items {
            if depth < self.cfg.max_dims && self.rng.gen_bool(0.6) {
                let l = self.random_loop(depth);
                out.push(StepSpec::Loop(l));
            } else {
                let s = self.stmt();
                out.push(StepSpec::Stmt(s));
            }
        }
        out
    }

    fn random_loop(&mut self, depth: u32) -> LoopSpec {
        let var = format!("i{}", self.loop_ct);
        self.loop_ct += 1;
        let param = self.rng.gen_range(0..self.params.len());
        let pname = self.params[param].0.clone();
        // Outer loops over the same parameter enable triangular/windowed
        // shapes.
        let outer: Vec<ScopeLoop> = self
            .scope
            .iter()
            .filter(|l| l.param == param)
            .cloned()
            .collect();
        let (lo, hi, slack_lo, slack_hi) = match self.rng.gen_range(0..8u32) {
            // Interior: exercises `v - 1` / `v + 1` stencil subscripts.
            0 | 1 => ("1".to_string(), format!("{pname} - 1"), 1, 1),
            // Triangular over an outer loop of the same parameter.
            2 | 3 if !outer.is_empty() => {
                let o = &outer[self.rng.gen_range(0..outer.len())];
                (format!("{} + 1", o.var), pname.clone(), o.slack_lo + 1, 0)
            }
            // Windowed: multi-bound `min(P, o + 2)` upper bound.
            4 if !outer.is_empty() => {
                let o = &outer[self.rng.gen_range(0..outer.len())];
                (
                    o.var.clone(),
                    format!("min({pname}, {} + 2)", o.var),
                    o.slack_lo,
                    0,
                )
            }
            // Base loop 0..P.
            _ => ("0".to_string(), pname.clone(), 0, 0),
        };
        let step = if self.rng.gen_bool(0.15) { 2 } else { 1 };
        let reverse = self.rng.gen_bool(0.15);
        if step == 1 && !reverse {
            self.tileable.push(var.clone());
        }
        self.scope.push(ScopeLoop {
            var: var.clone(),
            param,
            slack_lo,
            slack_hi,
        });
        let body = self.body(depth + 1);
        self.scope.pop();
        LoopSpec {
            var,
            lo,
            hi,
            step,
            reverse,
            pinned: false,
            body,
        }
    }

    fn stmt(&mut self) -> StmtSpec {
        let name = format!("S{}", self.stmt_ct);
        self.stmt_ct += 1;
        self.stmt_meta.push((name.clone(), self.scope.len()));
        let write = self.access();
        let mut writes = vec![write.clone()];
        if self.rng.gen_bool(0.15) {
            writes.push(self.access());
        }
        let mut reads = Vec::new();
        // Update-style statements read their own write target.
        if self.rng.gen_bool(0.5) {
            reads.push(write);
        }
        for _ in 0..self.rng.gen_range(0..=2u32) {
            reads.push(self.access());
        }
        StmtSpec {
            name,
            writes,
            reads,
        }
    }

    /// One rendered access into a random array, in range by construction.
    fn access(&mut self) -> String {
        let a = self.rng.gen_range(0..self.arrays.len());
        let (name, extents) = {
            let a = &self.arrays[a];
            (a.name.clone(), a.extents.clone())
        };
        let idx: String = extents
            .iter()
            .map(|&p| format!("[{}]", self.subscript(p)))
            .collect();
        format!("{name}{idx}")
    }

    /// A subscript provably inside `[0, P)` for parameter index `p`.
    fn subscript(&mut self, p: usize) -> String {
        let dims: Vec<ScopeLoop> = self
            .scope
            .iter()
            .filter(|l| l.param == p)
            .cloned()
            .collect();
        if dims.is_empty() || self.rng.gen_bool(0.15) {
            return format!("{}", self.rng.gen_range(0..MIN_PARAM));
        }
        let d = &dims[self.rng.gen_range(0..dims.len())];
        let pname = &self.params[p].0;
        match self.rng.gen_range(0..6u32) {
            // Reversal: P - 1 - v.
            0 => format!("{pname} - 1 - {}", d.var),
            // Negative offset within the loop's lower slack.
            1 if d.slack_lo > 0 => format!("{} - 1", d.var),
            // Positive offset within the loop's upper slack.
            2 if d.slack_hi > 0 => format!("{} + 1", d.var),
            _ => d.var.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate_case(7, 3, &cfg).render();
        let b = generate_case(7, 3, &cfg).render();
        assert_eq!(a, b);
        let c = generate_case(7, 4, &cfg).render();
        assert_ne!(a, c, "distinct indices give distinct cases");
    }

    #[test]
    fn generated_cases_parse_and_certify() {
        let cfg = GenConfig::default();
        for idx in 0..40 {
            let spec = generate_case(11, idx, &cfg);
            let src = spec.render();
            let k = iolb_ir::parse_kernel(&src)
                .unwrap_or_else(|e| panic!("case {idx} does not parse: {e}\n{src}"));
            let params = k.default_params().expect("defaults cover all params");
            iolb_ir::interp::validate_accesses(&k.program, &params)
                .unwrap_or_else(|e| panic!("case {idx} fails certification: {e}\n{src}"));
            assert!(spec.num_stmts() >= 1);
        }
    }

    #[test]
    fn grammar_features_all_appear_across_a_seed_range() {
        let cfg = GenConfig::default();
        let mut saw = [false; 6]; // reverse, step, min-bound, triangular, tile, scalar
        for idx in 0..200 {
            let src = generate_case(5, idx, &cfg).render();
            saw[0] |= src.contains("reverse ");
            saw[1] |= src.contains(" step 2");
            saw[2] |= src.contains("min(");
            saw[3] |= src.contains(" + 1..");
            saw[4] |= src.contains("tile ");
            saw[5] |= src.contains("scalar ");
        }
        assert!(saw.iter().all(|&b| b), "missing grammar feature: {saw:?}");
    }
}
