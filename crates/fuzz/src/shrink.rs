//! Greedy reproducer minimization.
//!
//! Given a [`CaseSpec`] whose rendered source breaks an oracle invariant,
//! [`shrink_case`] repeatedly applies structure-removing mutations and
//! keeps each one that still reproduces a violation of the *same
//! invariant* (matching identifiers prevents drifting onto a different
//! bug mid-shrink):
//!
//! * drop a statement (always keeping at least one),
//! * drop a `tile` directive,
//! * pin a loop to at most its first iteration (unit step, forward —
//!   [`gen::LoopSpec::pin`](crate::gen::LoopSpec::pin) keeps the lower bound, so lower-slack subscripts
//!   like `v − 1` stay in range and empty loops stay empty),
//! * shrink a parameter default toward [`MIN_PARAM`],
//! * drop a read (or a surplus write) from a statement,
//! * prune loops whose bodies became empty.
//!
//! Every mutation preserves the generator's in-range-by-construction
//! invariant (nothing ever *adds* structure or widens a bound), so a
//! shrunken spec is still a valid kernel. The process runs to a fixpoint:
//! one round tries every mutation site once, and shrinking stops when a
//! full round makes no progress.

use crate::gen::{CaseSpec, StepSpec, MIN_PARAM};
use crate::oracle::{Oracle, Violation};

/// Outcome of minimization.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized spec (still failing).
    pub spec: CaseSpec,
    /// The violation the minimized spec produces.
    pub violation: Violation,
    /// Mutations accepted on the way down.
    pub accepted: u32,
}

/// Minimizes `spec` while `oracle` keeps reporting a violation with the
/// same invariant identifier as `violation`.
pub fn shrink_case(spec: &CaseSpec, oracle: &Oracle, violation: &Violation) -> ShrinkOutcome {
    let mut current = spec.clone();
    let mut current_violation = violation.clone();
    let mut accepted = 0u32;
    // Every accepted mutation strictly removes structure or shrinks a
    // parameter, so the fixpoint terminates; the cap is a belt-and-braces
    // guard against a mutation that fails to make progress.
    for _ in 0..10_000 {
        let mut progressed = false;
        for candidate in mutations(&current) {
            if let Err(v) = oracle.check_source(&candidate.render()) {
                if v.invariant == current_violation.invariant {
                    current = candidate;
                    current_violation = v;
                    accepted += 1;
                    progressed = true;
                    break; // re-enumerate mutation sites on the new spec
                }
            }
        }
        if !progressed {
            break;
        }
    }
    ShrinkOutcome {
        spec: current,
        violation: current_violation,
        accepted,
    }
}

/// All single-step shrink candidates of `spec`, most aggressive first.
fn mutations(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    let n_stmts = spec.num_stmts();

    // Drop one statement (keep at least one).
    if n_stmts > 1 {
        for i in 0..n_stmts {
            let mut cand = spec.clone();
            let mut idx = i;
            if let Some(removed) = remove_stmt(&mut cand.body, &mut idx) {
                if cand.analyze.as_deref() == Some(removed.as_str()) {
                    cand.analyze = None; // the oracle falls back to deepest
                }
                prune(&mut cand);
                out.push(cand);
            }
        }
    }

    // Drop one tile directive.
    for i in 0..spec.tiles.len() {
        let mut cand = spec.clone();
        cand.tiles.remove(i);
        out.push(cand);
    }

    // Pin one loop to a single iteration.
    let n_loops = count_loops(&spec.body);
    for i in 0..n_loops {
        let mut cand = spec.clone();
        let mut idx = i;
        if pin_loop(&mut cand.body, &mut idx) == Some(true) {
            out.push(cand);
        }
    }

    // Shrink one parameter default toward the floor.
    for i in 0..spec.params.len() {
        if spec.params[i].1 > MIN_PARAM {
            let mut cand = spec.clone();
            cand.params[i].1 = MIN_PARAM.max(cand.params[i].1 / 2);
            out.push(cand);
        }
    }

    // Drop one read / one surplus write per statement.
    for i in 0..n_stmts {
        for drop_write in [false, true] {
            let mut cand = spec.clone();
            let mut idx = i;
            if slim_stmt(&mut cand.body, &mut idx, drop_write) == Some(true) {
                out.push(cand);
            }
        }
    }

    out
}

/// Removes empty loops (and tile directives that no longer name a loop).
fn prune(spec: &mut CaseSpec) {
    prune_steps(&mut spec.body);
    let mut names = Vec::new();
    collect_loop_names(&spec.body, &mut names);
    spec.tiles.retain(|(n, _)| names.iter().any(|m| m == n));
}

fn prune_steps(steps: &mut Vec<StepSpec>) {
    for s in steps.iter_mut() {
        if let StepSpec::Loop(l) = s {
            prune_steps(&mut l.body);
        }
    }
    steps.retain(|s| !matches!(s, StepSpec::Loop(l) if l.body.is_empty()));
}

fn collect_loop_names(steps: &[StepSpec], out: &mut Vec<String>) {
    for s in steps {
        if let StepSpec::Loop(l) = s {
            out.push(l.var.clone());
            collect_loop_names(&l.body, out);
        }
    }
}

fn count_loops(steps: &[StepSpec]) -> usize {
    steps
        .iter()
        .map(|s| match s {
            StepSpec::Stmt(_) => 0,
            StepSpec::Loop(l) => 1 + count_loops(&l.body),
        })
        .sum()
}

/// Removes the statement with pre-order index `*idx`; returns its name.
fn remove_stmt(steps: &mut Vec<StepSpec>, idx: &mut usize) -> Option<String> {
    for i in 0..steps.len() {
        match &mut steps[i] {
            StepSpec::Stmt(s) => {
                if *idx == 0 {
                    let name = s.name.clone();
                    steps.remove(i);
                    return Some(name);
                }
                *idx -= 1;
            }
            StepSpec::Loop(l) => {
                if let Some(name) = remove_stmt(&mut l.body, idx) {
                    return Some(name);
                }
            }
        }
    }
    None
}

/// Pins the loop with pre-order index `*idx` to at most its first
/// iteration. `Some(true)` = pinned, `Some(false)` = target found but
/// already pinned, `None` = target not in this subtree.
fn pin_loop(steps: &mut [StepSpec], idx: &mut usize) -> Option<bool> {
    for s in steps.iter_mut() {
        if let StepSpec::Loop(l) = s {
            if *idx == 0 {
                return Some(l.pin());
            }
            *idx -= 1;
            if let Some(hit) = pin_loop(&mut l.body, idx) {
                return Some(hit);
            }
        }
    }
    None
}

/// Drops the last read (or the surplus second write) of the statement
/// with pre-order index `*idx`. `Some(true)` = mutated, `Some(false)` =
/// target found but had nothing to drop, `None` = target not in this
/// subtree (keep scanning).
fn slim_stmt(steps: &mut [StepSpec], idx: &mut usize, drop_write: bool) -> Option<bool> {
    for s in steps.iter_mut() {
        match s {
            StepSpec::Stmt(st) => {
                if *idx == 0 {
                    return Some(if drop_write {
                        st.writes.len() > 1 && st.writes.pop().is_some()
                    } else {
                        !st.reads.is_empty() && st.reads.pop().is_some()
                    });
                }
                *idx -= 1;
            }
            StepSpec::Loop(l) => {
                if let Some(hit) = slim_stmt(&mut l.body, idx, drop_write) {
                    return Some(hit);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    /// With an injected bound overshoot every case fails, and the shrinker
    /// must strip each one down to (at most) a two-statement reproducer —
    /// the acceptance proof that the oracle + shrinker machinery works.
    #[test]
    fn injected_overshoot_shrinks_to_a_tiny_reproducer() {
        let mut oracle = Oracle::with(vec![0, 8], false);
        oracle.inject_overshoot = 1e12;
        let cfg = GenConfig::default();
        for idx in 0..4 {
            let spec = generate_case(1234, idx, &cfg);
            let violation = oracle
                .check_source(&spec.render())
                .expect_err("injection must fail every case");
            let out = shrink_case(&spec, &oracle, &violation);
            assert_eq!(out.violation.invariant, violation.invariant);
            assert!(
                out.spec.num_stmts() <= 2,
                "case {idx}: shrunk to {} statements:\n{}",
                out.spec.num_stmts(),
                out.spec.render()
            );
            assert!(out.spec.tiles.is_empty(), "tiles dropped");
            // The shrunken source still fails with the same invariant.
            let v = oracle.check_source(&out.spec.render()).unwrap_err();
            assert_eq!(v.invariant, violation.invariant);
        }
    }

    /// Pinning an interior loop must not break lower-slack subscripts:
    /// `B[i0 - 1]` under `for i0 in 1..N-1` stays in range because the
    /// pin keeps the lower bound (`1..min(N-1, 1+1)`), never `0..1`.
    #[test]
    fn pinning_keeps_lower_slack_subscripts_in_range() {
        use crate::gen::{ArraySpec, LoopSpec, StmtSpec};
        let spec = CaseSpec {
            name: "pin_slack".to_string(),
            params: vec![("N".to_string(), 6)],
            arrays: vec![ArraySpec {
                name: "B".to_string(),
                extents: vec![0],
            }],
            analyze: None,
            tiles: Vec::new(),
            body: vec![StepSpec::Loop(LoopSpec {
                var: "i0".to_string(),
                lo: "1".to_string(),
                hi: "N - 1".to_string(),
                step: 1,
                reverse: false,
                pinned: false,
                body: vec![StepSpec::Stmt(StmtSpec {
                    name: "S0".to_string(),
                    writes: vec!["B[i0]".to_string()],
                    reads: vec!["B[i0 - 1]".to_string()],
                })],
            })],
        };
        let oracle = Oracle::with(vec![0, 4], false);
        oracle.check_source(&spec.render()).expect("original sound");
        for cand in mutations(&spec) {
            // No mutation may produce a panicking (out-of-range) kernel;
            // every candidate must run the oracle to a verdict.
            let _ = oracle.check_source(&cand.render());
        }
        let mut pinned = spec.clone();
        let mut idx = 0;
        assert_eq!(pin_loop(&mut pinned.body, &mut idx), Some(true));
        let rendered = pinned.render();
        assert!(rendered.contains("min(N - 1, 1 + 1)"), "{rendered}");
        oracle
            .check_source(&rendered)
            .expect("pinned loop keeps subscripts in range");
        // Re-pinning is a no-op candidate.
        let mut idx = 0;
        assert_eq!(pin_loop(&mut pinned.body, &mut idx), Some(false));
    }

    #[test]
    fn shrinking_a_sound_case_is_a_no_op_guard() {
        // shrink_case is only called on failing cases; mutations of a
        // passing case never validate, so the spec comes back unchanged.
        let oracle = Oracle::with(vec![0], false);
        let spec = generate_case(9, 0, &GenConfig::default());
        oracle
            .check_source(&spec.render())
            .expect("generated cases are sound");
        let fake = Violation {
            invariant: "bound-exceeds-opt",
            detail: String::new(),
        };
        let out = shrink_case(&spec, &oracle, &fake);
        assert_eq!(out.accepted, 0);
        assert_eq!(out.spec.num_stmts(), spec.num_stmts());
    }
}
