//! Fault-injection harness: deterministic faults at every governed seam.
//!
//! The resource-governance layer ([`iolb_core::govern`]) promises that a
//! panic, budget exhaustion, or deadline landing at *any* polled seam
//! surfaces as the matching typed [`AnalysisError`] without aborting the
//! process or poisoning shared state. This module turns that promise into
//! a checkable matrix: for every `(fault kind, seam)` cell it arms a
//! one-shot [`Fault`] on a fresh [`CancelToken`], drives the narrowest
//! real pipeline that reaches the seam, and records
//!
//! * the **observed error class** (must equal the kind's
//!   [`FaultKind::expected_class`]), and
//! * a **control re-run** of the same driver on an unlimited token (must
//!   succeed — the fault left nothing corrupted behind).
//!
//! Both the `iolb fuzz --inject …` CLI flag and the CI smoke job
//! (`cargo xtask fuzz-smoke --inject …`) are thin wrappers over
//! [`run_injection_matrix`].

use iolb_bench::sweep::{default_sweep_kernels_at, try_run_sweep, SweepSize};
use iolb_bench::tightness::{try_run_tightness, TightnessJob};
use iolb_cdag::try_build_cdag;
use iolb_core::govern::{catch_analysis_mut, AnalysisError, Budget, CancelToken};
use iolb_service::{RealIo, ReportStore, StoreKey};
// Re-exported so harness callers (xtask, CLI) can name faults without a
// direct govern dependency.
pub use iolb_core::govern::{Fault, FaultKind, Seam};

/// A small auto-scheduled GEMM; the one embedded shape reaches every
/// tightness-side seam (instance enumeration and the tile tuner).
const GEMM_MINI: &str = "
kernel gemm_mini(M, N, K) {
  array A[M][K];
  array B[K][N];
  array C[M][N];
  analyze SU;
  schedule { tile i; tile j; tile k; }

  for i in 0..M {
    for j in 0..N {
      Cz: C[i][j] = op();
    }
  }
  for i in 0..M {
    for j in 0..N {
      for k in 0..K {
        SU: C[i][j] = op(A[i][k], B[k][j], C[i][j]);
      }
    }
  }
}
";

const GEMM_MINI_PARAMS: [i64; 3] = [8, 8, 8];

fn mini_program() -> iolb_ir::Program {
    match iolb_ir::parse_kernel(GEMM_MINI) {
        Ok(k) => k.program,
        Err(e) => unreachable!("embedded kernel is valid: {e}"),
    }
}

fn mini_tightness_job() -> TightnessJob {
    match iolb_ir::parse_kernel(GEMM_MINI) {
        Ok(k) => TightnessJob {
            name: "gemm_mini".to_string(),
            program: k.program,
            params: GEMM_MINI_PARAMS.to_vec(),
            env: Vec::new(),
            classical: None,
            hourglass: None,
            schedule: k.schedule,
            s_offsets: vec![0, 8],
        },
        Err(e) => unreachable!("embedded kernel is valid: {e}"),
    }
}

/// One small kernel from the standard validation matrix, with a reduced S
/// grid — the narrowest real workload that runs both curve passes.
fn small_sweep_kernels() -> Vec<iolb_bench::sweep::SweepKernel> {
    let mut kernels = default_sweep_kernels_at(SweepSize::Small);
    kernels.truncate(1);
    for k in &mut kernels {
        k.s_offsets = vec![0, 8];
    }
    kernels
}

/// Drives the narrowest pipeline fragment that polls `seam`, under the
/// given budget and token. Used both for the faulted run and the clean
/// control run of each matrix cell.
fn drive(seam: Seam, budget: &Budget, token: &CancelToken) -> Result<(), AnalysisError> {
    match seam {
        Seam::Admission => {
            iolb_ir::admission::estimate(&mini_program(), &GEMM_MINI_PARAMS, budget, token)
                .map(|_| ())
        }
        Seam::CdagFill => {
            try_build_cdag(&mini_program(), &GEMM_MINI_PARAMS, budget, token).map(|_| ())
        }
        Seam::LruPass | Seam::OptPass => {
            try_run_sweep(small_sweep_kernels(), budget, token).map(|_| ())
        }
        Seam::Instances | Seam::Tuner => {
            try_run_tightness(vec![mini_tightness_job()], budget, token).map(|_| ())
        }
        Seam::StoreAppend | Seam::StoreFlush | Seam::StoreCompact | Seam::StoreRecover => {
            drive_store(seam, token)
        }
    }
}

/// Removes its scratch directory on drop — injected panics unwind
/// through the store drivers, so cleanup must ride the unwind.
struct Scratch(std::path::PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn store_scratch() -> Scratch {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    Scratch(std::env::temp_dir().join(format!(
        "iolb_inject_store_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )))
}

/// Drives the narrowest persistent-store operation that polls `seam` on
/// the given token, against a scratch directory that is removed again
/// (even when the injected fault is a panic).
fn drive_store(seam: Seam, token: &CancelToken) -> Result<(), AnalysisError> {
    let scratch = store_scratch();
    let dir = scratch.0.clone();
    let key = StoreKey {
        canon_hash: 0xF00D,
        options_fp: "inject".to_string(),
        engines_fp: "all".to_string(),
    };
    let body = "persisted body";
    let unlimited = CancelToken::unlimited();
    match seam {
        Seam::StoreAppend => ReportStore::open(&dir)?.append(&key, body, token),
        Seam::StoreFlush => {
            let store = ReportStore::open(&dir)?;
            store.append(&key, body, &unlimited)?;
            store.flush(token)
        }
        Seam::StoreCompact => {
            let store = ReportStore::open(&dir)?;
            store.append(&key, body, &unlimited)?;
            store.compact(token)
        }
        Seam::StoreRecover => {
            {
                let store = ReportStore::open(&dir)?;
                store.append(&key, body, &unlimited)?;
                store.flush(&unlimited)?;
            }
            ReportStore::open_with(&dir, 0, Box::new(RealIo), token).map(|_| ())
        }
        other => unreachable!("{other} is not a store seam"),
    }
}

/// Outcome of one `(kind, seam)` matrix cell.
#[derive(Debug, Clone)]
pub struct InjectionOutcome {
    /// The injected fault kind.
    pub kind: FaultKind,
    /// The seam the fault was armed at.
    pub seam: Seam,
    /// The error class the kind must surface as.
    pub expected_class: &'static str,
    /// The error class actually observed (`"ok"` if no error surfaced —
    /// always a failure, since the fault fires on the seam's first poll).
    pub observed_class: String,
    /// The observed error's rendered message.
    pub message: String,
    /// Whether the clean control re-run after the fault succeeded.
    pub control_ok: bool,
}

impl InjectionOutcome {
    /// The cell passes: the fault surfaced as its class *and* the control
    /// run proved no state was poisoned.
    pub fn as_expected(&self) -> bool {
        self.observed_class == self.expected_class && self.control_ok
    }
}

/// Outcomes over a full or partial injection matrix.
#[derive(Debug, Clone)]
pub struct InjectionReport {
    /// One outcome per `(kind, seam)` cell, in matrix order.
    pub outcomes: Vec<InjectionOutcome>,
}

impl InjectionReport {
    /// Every cell surfaced its class and left clean state behind.
    pub fn all_expected(&self) -> bool {
        self.outcomes.iter().all(InjectionOutcome::as_expected)
    }

    /// Human-readable outcome table (one row per cell).
    pub fn render_table(&self) -> String {
        let mut out = String::from("fault      seam        class      control  verdict\n");
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:<10} {:<11} {:<10} {:<8} {}\n",
                o.kind.as_str(),
                o.seam.as_str(),
                o.observed_class,
                if o.control_ok { "clean" } else { "POISONED" },
                if o.as_expected() { "ok" } else { "UNEXPECTED" },
            ));
        }
        out
    }
}

/// Runs one matrix cell: arms `fault` on a fresh token, drives the seam's
/// pipeline behind a panic barrier, classifies the surfaced error, then
/// re-drives the same pipeline cleanly as the state-poisoning control.
pub fn run_injection(fault: Fault) -> InjectionOutcome {
    let budget = Budget::unlimited();
    let token = CancelToken::with_fault(fault);
    let result = catch_analysis_mut(|| drive(fault.seam, &budget, &token));
    let (observed_class, message) = match result {
        Ok(()) => ("ok".to_string(), String::new()),
        Err(e) => (e.class_name().to_string(), e.to_string()),
    };
    let control_ok = drive(fault.seam, &budget, &CancelToken::unlimited()).is_ok();
    InjectionOutcome {
        kind: fault.kind,
        seam: fault.seam,
        expected_class: fault.kind.expected_class(),
        observed_class,
        message,
        control_ok,
    }
}

/// Runs the full `kinds × Seam::ALL` matrix. Injected panics are part of
/// the experiment, so the default panic hook's backtrace spew is silenced
/// for the duration (and restored before returning).
pub fn run_injection_matrix(kinds: &[FaultKind]) -> InjectionReport {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut outcomes = Vec::with_capacity(kinds.len() * Seam::ALL.len());
    for &kind in kinds {
        for seam in Seam::ALL {
            outcomes.push(run_injection(Fault { kind, seam }));
        }
    }
    std::panic::set_hook(prev);
    InjectionReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seam_driver_runs_clean_without_a_fault() {
        let budget = Budget::unlimited();
        for seam in Seam::ALL {
            let token = CancelToken::unlimited();
            assert!(
                drive(seam, &budget, &token).is_ok(),
                "clean driver failed at seam {seam}"
            );
            assert!(token.checks_seen() > 0, "driver never polled seam {seam}");
        }
    }

    #[test]
    fn full_injection_matrix_is_contained_and_class_exact() {
        let report = run_injection_matrix(&FaultKind::ALL);
        assert_eq!(report.outcomes.len(), 3 * Seam::ALL.len());
        assert!(
            report.all_expected(),
            "injection matrix:\n{}",
            report.render_table()
        );
        // Every panic cell carries the injection payload through to the
        // typed error — the thread-scope bridge must not swallow it.
        for o in &report.outcomes {
            if o.kind == FaultKind::Panic {
                assert!(
                    o.message.contains("injected panic"),
                    "{}@{}: payload lost: {:?}",
                    o.kind.as_str(),
                    o.seam.as_str(),
                    o.message
                );
            }
        }
    }

    #[test]
    fn single_cell_outcome_names_its_seam() {
        let o = run_injection(Fault {
            kind: FaultKind::Oom,
            seam: Seam::CdagFill,
        });
        assert!(o.as_expected(), "{}: {}", o.observed_class, o.message);
        assert_eq!(o.expected_class, "budget");
        assert!(o.message.contains("injected_oom"), "{}", o.message);
    }
}
