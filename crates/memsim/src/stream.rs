//! Streaming, sharded stack-distance engines for out-of-core traces.
//!
//! The materialized [`CurveEngine`](crate::CurveEngine) walks one in-memory
//! `&[u64]` slice with 32-bit position bookkeeping — exact and fast up to
//! the `u32` sentinel ceiling, but it requires the whole trace resident
//! and runs single-threaded. This module prices the same curves from a
//! *pull* source ([`ChunkedTrace`]) without materializing the trace, in
//! 64-bit id/position space, sharded across rayon workers:
//!
//! * **LRU** ([`ShardedCurveEngine::try_lru`]) — exact PARDA-style
//!   decomposition. The trace splits into fixed-size chunks; each worker
//!   resolves every *within-chunk* reuse with a local Fenwick pass and
//!   reports its chunk's distance-histogram delta plus two boundary
//!   summaries (first-touch list, distinct cells ordered by last touch).
//!   A sequential merge then replays only the boundary accesses over one
//!   Fenwick tree whose universe is the chunk-last positions of all
//!   chunks (coordinate-compressed, ≤ one entry per distinct cell per
//!   chunk). **Chunk merge invariant:** while chunk `k` replays, every
//!   cell's mark sits either at its last position in the most recent
//!   earlier chunk that touched it (in the Fenwick) or, once re-touched
//!   inside chunk `k`, in a plain per-chunk counter — so
//!   `suffix(mark) + counter + 1` is *exactly* the access's global reuse
//!   distance, and the merged histogram is bitwise the single-threaded
//!   one.
//! * **OPT** ([`ShardedCurveEngine::try_opt`]) — the priority stack is
//!   inherently sequential (every displacement chain depends on all
//!   history), so OPT streams instead of sharding the stack itself:
//!   parallel workers extract per-chunk first/last summaries, one cheap
//!   backward sweep threads cross-chunk next-use positions through them,
//!   and a forward pass runs the Mattson displacement stack chunk by
//!   chunk in `u64` priority space, carrying the (≤ horizon) stack
//!   between chunks. The histogram is bitwise the materialized engine's.
//!
//! Both passes poll the governance token at the [`Seam::LruPass`] /
//! [`Seam::OptPass`] seams inside every shard (every 4096 positions) and
//! in the merge, so cancellation and deadlines land in bounded time no
//! matter which worker is hot.

use crate::curve::{Fenwick, MissCurve};
use iolb_govern::{AnalysisError, CancelToken, Seam};
use rayon::prelude::*;
use std::collections::HashMap;

/// A pull source of packed trace events (`(cell << 1) | write` per
/// `u64`), random-access at chunk granularity so parallel shards can read
/// disjoint windows concurrently. Implementations are stateless readers:
/// `fill` may be called from many threads at once.
pub trait ChunkedTrace: Sync {
    /// Total number of events.
    fn len(&self) -> u64;

    /// True when the trace has no events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `buf` with the events at positions `start..start + buf.len()`.
    ///
    /// # Panics
    /// Implementations may panic when the window exceeds the trace.
    fn fill(&self, start: u64, buf: &mut [u64]);
}

/// A materialized packed trace is trivially chunked — the bridge that
/// lets every existing `Vec<u64>` trace (tightness candidates, fuzz
/// cases) flow through the sharded engines.
impl ChunkedTrace for [u64] {
    fn len(&self) -> u64 {
        <[u64]>::len(self) as u64
    }

    fn fill(&self, start: u64, buf: &mut [u64]) {
        let s = start as usize;
        buf.copy_from_slice(&self[s..s + buf.len()]);
    }
}

impl ChunkedTrace for Vec<u64> {
    fn len(&self) -> u64 {
        self.as_slice().len() as u64
    }

    fn fill(&self, start: u64, buf: &mut [u64]) {
        ChunkedTrace::fill(self.as_slice(), start, buf);
    }
}

impl<T: ChunkedTrace + ?Sized> ChunkedTrace for &T {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn fill(&self, start: u64, buf: &mut [u64]) {
        (**self).fill(start, buf)
    }
}

/// "No position" marker in the 64-bit id space.
const NONE64: u64 = u64::MAX;
/// Priority of a value never read again before overwrite (64-bit twin of
/// the materialized engine's `DEAD`).
const DEAD64: u64 = u64::MAX;
/// Empty priority slot (real next-use positions are ≥ 1: a next use is
/// strictly later than the access that set it).
const EMPTY64: u64 = 0;
/// `idx_of` sentinels — these mark stack *slots* (bounded by the
/// horizon), not cell ids, so the streaming engine only requires
/// `horizon < u32::MAX - 1` while cells and positions live in `u64`.
const NIL32: u32 = u32::MAX;
const DROPPED32: u32 = u32::MAX - 1;

/// Poll cadence inside shard loops (positions between token checks).
const POLL_MASK: usize = 0xFFF;

/// Default shard length: 1 Mi events (8 MiB of buffer per worker).
pub const DEFAULT_CHUNK_LEN: usize = 1 << 20;

/// Sharded/streaming miss-curve engine over a [`ChunkedTrace`].
#[derive(Debug, Clone)]
pub struct ShardedCurveEngine {
    chunk_len: usize,
}

impl Default for ShardedCurveEngine {
    fn default() -> ShardedCurveEngine {
        ShardedCurveEngine::new()
    }
}

/// Per-chunk output of the parallel LRU shard pass.
struct LruChunk {
    /// `(cell, first access is a write)` in first-touch order — the
    /// boundary accesses the merge replays.
    firsts: Vec<(u64, bool)>,
    /// Distinct cells ordered by their last position in the chunk — the
    /// chunk's slice of the merge Fenwick's compressed universe.
    lasts: Vec<u64>,
    /// Within-chunk finite-distance histogram delta (1-indexed).
    hist: Vec<u64>,
    /// Within-chunk beyond-horizon read reuses.
    beyond: u64,
    /// Largest cell id seen.
    max_cell: u64,
}

/// Per-chunk output of the parallel OPT summary pass.
struct OptChunk {
    /// `(cell, packed global position of the first in-chunk access)` in
    /// first-touch order.
    firsts: Vec<(u64, u64)>,
    /// `(cell, last local position)` per distinct cell.
    lasts: Vec<(u64, u32)>,
    /// Packed next use *after* this chunk for each entry of `lasts`
    /// ([`NONE64`] when the cell never recurs); filled by the backward
    /// threading sweep.
    nu_of_last: Vec<u64>,
    /// Largest cell id seen.
    max_cell: u64,
}

impl ShardedCurveEngine {
    /// Engine with the default shard length.
    pub fn new() -> ShardedCurveEngine {
        ShardedCurveEngine::with_chunk_len(DEFAULT_CHUNK_LEN)
    }

    /// Engine with an explicit shard length (tests force tiny chunks so
    /// every boundary path is exercised on small traces).
    ///
    /// # Panics
    /// Panics when `chunk_len` is zero.
    pub fn with_chunk_len(chunk_len: usize) -> ShardedCurveEngine {
        assert!(chunk_len >= 1, "chunk length must be positive");
        ShardedCurveEngine { chunk_len }
    }

    /// Exact LRU miss curve for capacities `1..=horizon`, bitwise equal
    /// to [`CurveEngine::lru_packed`](crate::CurveEngine::lru_packed) on
    /// the materialized trace.
    ///
    /// # Errors
    /// Cancellation/deadline from the token (polled at
    /// [`Seam::LruPass`] inside every shard and per merge step).
    pub fn try_lru(
        &self,
        trace: &(impl ChunkedTrace + ?Sized),
        horizon: usize,
        token: &CancelToken,
    ) -> Result<MissCurve, AnalysisError> {
        assert!(horizon >= 1, "curve horizon must be positive");
        let len = trace.len();
        if len == 0 {
            return Ok(MissCurve::from_histogram(0, 0, &vec![0; horizon + 1], 0));
        }
        // Shard pass: each chunk resolves its internal reuses exactly and
        // summarizes its boundary.
        let chunks = self.map_chunks(len, |k, lo, buf| {
            trace.fill(lo, buf);
            lru_chunk_pass(k, buf, horizon, token)
        })?;

        // Sequential boundary merge over the compressed mark universe.
        let cells = chunks.iter().map(|c| c.max_cell + 1).max().unwrap_or(0) as usize;
        let universe: usize = chunks.iter().map(|c| c.lasts.len()).sum();
        let mut bit = Fenwick::default();
        bit.reset(universe);
        let mut mark_idx: Vec<u64> = vec![NONE64; cells];
        let mut total_marks = 0u64;
        let mut hist = vec![0u64; horizon + 1];
        let (mut cold, mut beyond) = (0u64, 0u64);
        let mut base = 0u64;
        for ch in &chunks {
            token.check(Seam::LruPass)?;
            for (replayed, &(cell, write)) in ch.firsts.iter().enumerate() {
                let mi = mark_idx[cell as usize];
                if mi == NONE64 {
                    if !write {
                        cold += 1;
                    }
                } else {
                    // Marks strictly after the previous touch, plus every
                    // distinct cell already replayed in this chunk — the
                    // merge invariant (module docs).
                    let between = (total_marks - bit.prefix(mi as usize)) + replayed as u64;
                    let d = between + 1;
                    if !write {
                        if d as usize <= horizon {
                            hist[d as usize] += 1;
                        } else {
                            beyond += 1;
                        }
                    }
                    bit.add(mi as usize, -1);
                    total_marks -= 1;
                }
            }
            for (d, &h) in ch.hist.iter().enumerate() {
                hist[d] += h;
            }
            beyond += ch.beyond;
            for (rank, &cell) in ch.lasts.iter().enumerate() {
                let idx = base + rank as u64;
                bit.add(idx as usize, 1);
                total_marks += 1;
                mark_idx[cell as usize] = idx;
            }
            base += ch.lasts.len() as u64;
        }
        Ok(MissCurve::from_histogram(cold, beyond, &hist, len))
    }

    /// Exact OPT (Belady MIN) miss curve for capacities `1..=horizon`,
    /// bitwise equal to
    /// [`CurveEngine::opt_packed`](crate::CurveEngine::opt_packed) on the
    /// materialized trace.
    ///
    /// # Errors
    /// Cancellation/deadline from the token (polled at
    /// [`Seam::OptPass`] inside every shard and in the stack pass), and a
    /// typed refusal when the horizon would collide with the stack-slot
    /// sentinel space.
    pub fn try_opt(
        &self,
        trace: &(impl ChunkedTrace + ?Sized),
        horizon: usize,
        token: &CancelToken,
    ) -> Result<MissCurve, AnalysisError> {
        assert!(horizon >= 1, "curve horizon must be positive");
        if horizon as u64 >= DROPPED32 as u64 {
            return Err(AnalysisError::Refused(format!(
                "sharded OPT: horizon {horizon} collides with the stack-slot \
                 sentinel space (max {})",
                DROPPED32 - 1
            )));
        }
        let len = trace.len();
        if len == 0 {
            return Ok(MissCurve::from_histogram(0, 0, &vec![0; horizon + 1], 0));
        }
        // Parallel summary pass: per-chunk first/last touches.
        let mut chunks = self.map_chunks(len, |k, lo, buf| {
            trace.fill(lo, buf);
            opt_chunk_pass(k, lo, buf, token)
        })?;

        // Backward threading sweep: the next use after each chunk's last
        // touch of a cell is the first touch in the nearest later chunk.
        let cells = chunks.iter().map(|c| c.max_cell + 1).max().unwrap_or(0) as usize;
        let mut future: Vec<u64> = vec![NONE64; cells];
        for ch in chunks.iter_mut().rev() {
            token.check(Seam::OptPass)?;
            ch.nu_of_last = ch
                .lasts
                .iter()
                .map(|&(cell, _)| future[cell as usize])
                .collect();
            for &(cell, packed) in &ch.firsts {
                future[cell as usize] = packed;
            }
        }
        drop(future);

        // Forward streaming stack pass (sequential — the Mattson
        // displacement chain is history-dependent), u64 priorities, the
        // stack (≤ horizon entries) carried across chunk boundaries.
        let mut stack: Vec<u64> = Vec::new();
        let mut pri: Vec<u64> = vec![EMPTY64; horizon];
        let mut idx_of: Vec<u32> = vec![NIL32; cells];
        let mut hist = vec![0u64; horizon + 1];
        let (mut cold, mut beyond) = (0u64, 0u64);
        let mut buf = vec![
            0u64;
            self.chunk_len
                .min(usize::try_from(len).unwrap_or(usize::MAX))
        ];
        let mut chain: Vec<u64> = Vec::new();
        let mut head: HashMap<u64, u32> = HashMap::new();
        for (k, ch) in chunks.iter().enumerate() {
            let lo = k as u64 * self.chunk_len as u64;
            let n = self.chunk_len.min((len - lo) as usize);
            let buf = &mut buf[..n];
            trace.fill(lo, buf);
            // Local next-use threading: a reverse sweep resolves
            // within-chunk successors; last touches take the cross-chunk
            // position the backward sweep assigned.
            let nu_after: HashMap<u64, u64> = ch
                .lasts
                .iter()
                .zip(&ch.nu_of_last)
                .map(|(&(cell, _), &nu)| (cell, nu))
                .collect();
            chain.clear();
            chain.resize(n, NONE64);
            head.clear();
            for t in (0..n).rev() {
                let cell = buf[t] >> 1;
                chain[t] = match head.insert(cell, t as u32) {
                    Some(nt) => ((lo + nt as u64) << 1) | (buf[nt as usize] & 1),
                    None => nu_after[&cell],
                };
            }
            for (t, &packed) in buf.iter().enumerate() {
                if t & POLL_MASK == 0 {
                    token.check(Seam::OptPass)?;
                }
                let (cell, write) = ((packed >> 1) as usize, packed & 1 == 1);
                // Priority after this access: next-use position, DEAD on a
                // pending overwrite or no further use (the red-white
                // write-kill rule, identical to the materialized engine).
                let nu = chain[t];
                let new_pri = if nu == NONE64 || nu & 1 == 1 {
                    DEAD64
                } else {
                    nu >> 1
                };
                let slot = idx_of[cell];
                if slot == NIL32 || slot == DROPPED32 {
                    if !write {
                        if slot == NIL32 {
                            cold += 1;
                        } else {
                            beyond += 1;
                        }
                    }
                    if stack.is_empty() {
                        stack.push(cell as u64);
                        idx_of[cell] = 0;
                        pri[0] = new_pri;
                    } else {
                        let (carry, carry_pri) =
                            displace_top(&mut stack, &mut pri, &mut idx_of, cell as u64, new_pri);
                        let hi = stack.len() - 1;
                        let (carry, carry_pri) =
                            chain_swaps(&mut stack, &mut pri, &mut idx_of, 1, hi, carry, carry_pri);
                        if stack.len() < pri.len() {
                            let bottom = stack.len();
                            stack.push(carry);
                            idx_of[carry as usize] = bottom as u32;
                            pri[bottom] = carry_pri;
                        } else {
                            idx_of[carry as usize] = DROPPED32;
                        }
                    }
                } else {
                    let slot = slot as usize;
                    let d = slot + 1;
                    if !write {
                        debug_assert!(d <= horizon);
                        hist[d] += 1;
                    }
                    if slot == 0 {
                        pri[0] = new_pri;
                    } else {
                        let (carry, carry_pri) =
                            displace_top(&mut stack, &mut pri, &mut idx_of, cell as u64, new_pri);
                        let (carry, carry_pri) = chain_swaps(
                            &mut stack,
                            &mut pri,
                            &mut idx_of,
                            1,
                            slot - 1,
                            carry,
                            carry_pri,
                        );
                        stack[slot] = carry;
                        idx_of[carry as usize] = slot as u32;
                        pri[slot] = carry_pri;
                    }
                }
            }
        }
        Ok(MissCurve::from_histogram(cold, beyond, &hist, len))
    }

    /// Runs `pass` over every chunk in parallel (rayon bridge), collecting
    /// per-chunk summaries in chunk order; the first error wins.
    fn map_chunks<C: Send>(
        &self,
        len: u64,
        pass: impl Fn(usize, u64, &mut [u64]) -> Result<C, AnalysisError> + Sync,
    ) -> Result<Vec<C>, AnalysisError> {
        let n_chunks = usize::try_from(len.div_ceil(self.chunk_len as u64))
            .expect("chunk count exceeds the address space");
        (0..n_chunks)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|k| {
                let lo = k as u64 * self.chunk_len as u64;
                let n = self.chunk_len.min((len - lo) as usize);
                // Panics are mapped to typed errors *inside* the chunk
                // worker: the thread-scope bridge underneath would
                // otherwise replace the payload with a generic "a scoped
                // thread panicked".
                iolb_govern::catch_analysis_mut(|| {
                    let mut buf = vec![0u64; n];
                    pass(k, lo, &mut buf)
                })
            })
            .collect::<Vec<Result<C, AnalysisError>>>()
            .into_iter()
            .collect()
    }
}

/// Local LRU pass over one chunk: exact within-chunk reuse distances via
/// a chunk-local Fenwick, plus the boundary summaries the merge needs.
fn lru_chunk_pass(
    _k: usize,
    buf: &[u64],
    horizon: usize,
    token: &CancelToken,
) -> Result<LruChunk, AnalysisError> {
    let mut last: HashMap<u64, u32> = HashMap::new();
    let mut firsts: Vec<(u64, bool)> = Vec::new();
    let mut bit = Fenwick::default();
    bit.reset(buf.len());
    let mut hist = vec![0u64; horizon + 1];
    let mut beyond = 0u64;
    let mut max_cell = 0u64;
    for (t, &packed) in buf.iter().enumerate() {
        if t & POLL_MASK == 0 {
            token.check(Seam::LruPass)?;
        }
        let (cell, write) = (packed >> 1, packed & 1 == 1);
        max_cell = max_cell.max(cell);
        match last.insert(cell, t as u32) {
            Some(lp) => {
                let between = bit.prefix(t - 1) - bit.prefix(lp as usize);
                let d = between as usize + 1;
                if !write {
                    if d <= horizon {
                        hist[d] += 1;
                    } else {
                        beyond += 1;
                    }
                }
                bit.add(lp as usize, -1);
            }
            None => firsts.push((cell, write)),
        }
        bit.add(t, 1);
    }
    let mut by_last: Vec<(u32, u64)> = last.into_iter().map(|(cell, lp)| (lp, cell)).collect();
    by_last.sort_unstable();
    Ok(LruChunk {
        firsts,
        lasts: by_last.into_iter().map(|(_, cell)| cell).collect(),
        hist,
        beyond,
        max_cell,
    })
}

/// Summary pass over one chunk for the OPT threading phase.
fn opt_chunk_pass(
    _k: usize,
    lo: u64,
    buf: &[u64],
    token: &CancelToken,
) -> Result<OptChunk, AnalysisError> {
    let mut last: HashMap<u64, u32> = HashMap::new();
    let mut firsts: Vec<(u64, u64)> = Vec::new();
    let mut max_cell = 0u64;
    for (t, &packed) in buf.iter().enumerate() {
        if t & POLL_MASK == 0 {
            token.check(Seam::OptPass)?;
        }
        let cell = packed >> 1;
        max_cell = max_cell.max(cell);
        if last.insert(cell, t as u32).is_none() {
            firsts.push((cell, ((lo + t as u64) << 1) | (packed & 1)));
        }
    }
    Ok(OptChunk {
        firsts,
        lasts: last.into_iter().collect(),
        nu_of_last: Vec::new(),
        max_cell,
    })
}

/// Puts `cell` on top of the stack, returning the displaced old top as
/// the initial carry (64-bit twin of the materialized engine's helper).
#[inline]
fn displace_top(
    stack: &mut [u64],
    pri: &mut [u64],
    idx_of: &mut [u32],
    cell: u64,
    new_pri: u64,
) -> (u64, u64) {
    let carry = stack[0];
    let carry_pri = pri[0];
    stack[0] = cell;
    idx_of[cell as usize] = 0;
    pri[0] = new_pri;
    (carry, carry_pri)
}

/// Runs the Mattson displacement chain over slots `[lo, hi]`; a dead
/// carry short-circuits (nothing is strictly farther).
#[inline]
fn chain_swaps(
    stack: &mut [u64],
    pri: &mut [u64],
    idx_of: &mut [u32],
    lo: usize,
    hi: usize,
    mut carry: u64,
    mut carry_pri: u64,
) -> (u64, u64) {
    for k in lo..=hi {
        if carry_pri == DEAD64 {
            break;
        }
        if pri[k] > carry_pri {
            let (c, p) = (stack[k], pri[k]);
            stack[k] = carry;
            idx_of[carry as usize] = k as u32;
            pri[k] = carry_pri;
            (carry, carry_pri) = (c, p);
        }
    }
    (carry, carry_pri)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, CurveEngine};
    use proptest::prelude::*;

    fn pack(t: &[Access]) -> Vec<u64> {
        t.iter()
            .map(|a| ((a.cell as u64) << 1) | a.write as u64)
            .collect()
    }

    fn arb_trace() -> impl Strategy<Value = Vec<Access>> {
        proptest::collection::vec((0usize..12, proptest::bool::ANY), 1..200).prop_map(|v| {
            v.into_iter()
                .map(|(cell, write)| Access { cell, write })
                .collect()
        })
    }

    #[test]
    fn sharded_lru_on_a_hand_trace_across_boundaries() {
        // 0 1 2 0 with one event per chunk: every reuse crosses a chunk
        // boundary, so the whole distance comes from the merge Fenwick.
        let packed = pack(&[
            Access::read(0),
            Access::read(1),
            Access::read(2),
            Access::read(0),
        ]);
        let token = CancelToken::unlimited();
        let sharded = ShardedCurveEngine::with_chunk_len(1);
        let c = sharded.try_lru(&packed, 4, &token).unwrap();
        assert_eq!(c.loads(2), 4);
        assert_eq!(c.loads(3), 3);
        assert_eq!(c.cold_loads(), 3);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn empty_and_single_chunk_traces() {
        let token = CancelToken::unlimited();
        let e = ShardedCurveEngine::new();
        let empty: Vec<u64> = Vec::new();
        assert_eq!(e.try_lru(&empty, 3, &token).unwrap().loads(1), 0);
        assert_eq!(e.try_opt(&empty, 3, &token).unwrap().loads(1), 0);
        // A trace smaller than one chunk still flows through the shard
        // machinery (single chunk, trivial merge).
        let one = pack(&[Access::write(5), Access::read(5)]);
        assert_eq!(e.try_lru(&one, 3, &token).unwrap().loads(1), 0);
        assert_eq!(e.try_opt(&one, 3, &token).unwrap().loads(1), 0);
    }

    #[test]
    fn sharded_opt_refuses_horizon_in_sentinel_space() {
        let token = CancelToken::unlimited();
        let packed = pack(&[Access::read(0)]);
        let err = ShardedCurveEngine::new()
            .try_opt(&packed, u32::MAX as usize, &token)
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Refused(_)), "{err:?}");
    }

    /// Every shard honors the token: with single-event chunks a trip on
    /// the first check surfaces as `Cancelled` from whichever worker hits
    /// it first, for both policies, at their named seams.
    #[test]
    fn shards_honor_cancellation_at_their_seams() {
        let packed: Vec<u64> = (0..64u64).map(|c| c << 1).collect();
        let e = ShardedCurveEngine::with_chunk_len(1);
        let lru = e.try_lru(&packed, 4, &CancelToken::trip_after_checks(1));
        assert!(matches!(lru, Err(AnalysisError::Cancelled)), "{lru:?}");
        let opt = e.try_opt(&packed, 4, &CancelToken::trip_after_checks(1));
        assert!(matches!(opt, Err(AnalysisError::Cancelled)), "{opt:?}");
        // Injected faults at the pass seams surface as their class.
        use iolb_govern::{Fault, FaultKind};
        let lru = e.try_lru(
            &packed,
            4,
            &CancelToken::with_fault(Fault {
                kind: FaultKind::Deadline,
                seam: Seam::LruPass,
            }),
        );
        assert!(
            matches!(lru, Err(AnalysisError::Deadline { .. })),
            "{lru:?}"
        );
        let opt = e.try_opt(
            &packed,
            4,
            &CancelToken::with_fault(Fault {
                kind: FaultKind::Deadline,
                seam: Seam::OptPass,
            }),
        );
        assert!(
            matches!(opt, Err(AnalysisError::Deadline { .. })),
            "{opt:?}"
        );
    }

    proptest! {
        /// The sharded LRU curve is bitwise the materialized engine at
        /// EVERY capacity, for chunk lengths that force many boundaries.
        #[test]
        fn sharded_lru_matches_materialized(t in arb_trace(), chunk in 1usize..24) {
            let packed = pack(&t);
            let token = CancelToken::unlimited();
            let horizon = t.len().max(1);
            let want = CurveEngine::new().lru_packed(&packed, horizon);
            let got = ShardedCurveEngine::with_chunk_len(chunk)
                .try_lru(&packed, horizon, &token)
                .unwrap();
            prop_assert_eq!(got, want);
        }

        /// The streaming OPT curve is bitwise the materialized engine at
        /// EVERY capacity.
        #[test]
        fn streaming_opt_matches_materialized(t in arb_trace(), chunk in 1usize..24) {
            let packed = pack(&t);
            let token = CancelToken::unlimited();
            let horizon = t.len().max(1);
            let want = CurveEngine::new().opt_packed(&packed, horizon);
            let got = ShardedCurveEngine::with_chunk_len(chunk)
                .try_opt(&packed, horizon, &token)
                .unwrap();
            prop_assert_eq!(got, want);
        }

        /// Truncated horizons agree too (the beyond-bucket path).
        #[test]
        fn sharded_truncated_horizons_agree(t in arb_trace(), chunk in 1usize..16, horizon in 1usize..8) {
            let packed = pack(&t);
            let token = CancelToken::unlimited();
            let mut e = CurveEngine::new();
            let sharded = ShardedCurveEngine::with_chunk_len(chunk);
            prop_assert_eq!(
                sharded.try_lru(&packed, horizon, &token).unwrap(),
                e.lru_packed(&packed, horizon)
            );
            prop_assert_eq!(
                sharded.try_opt(&packed, horizon, &token).unwrap(),
                e.opt_packed(&packed, horizon)
            );
        }
    }
}
