//! One-pass stack-distance engines: the full LRU and Belady/OPT miss
//! curves of a trace from a single traversal.
//!
//! Both replacement policies simulated by this crate are *stack
//! algorithms* (Mattson, Gecsei, Slutz, Traiger 1970): the resident set of
//! a capacity-`S` cache is always the top `S` entries of one
//! policy-defined priority stack, for every `S` simultaneously. An access
//! therefore hits at capacity `S` exactly when its *stack distance* — the
//! position of the accessed cell in that stack — is at most `S`, and one
//! pass that records the distance histogram yields the exact miss count
//! `loads(S)` for **all** capacities at once, replacing a per-`S` replay
//! loop of [`LruSim`]/[`BeladySim`] with a single traversal:
//!
//! * [`CurveEngine::lru`] — LRU stack distances via a Fenwick tree over
//!   last-access positions (the classical reuse-distance profiler):
//!   O(log n) per access;
//! * [`CurveEngine::opt`] — OPT stack distances via a priority-by-next-use
//!   stack simulation. Next uses come from the same reverse-pass chain
//!   threading as [`BeladySim`], a value's *pending overwrite* kills it
//!   exactly like the simulator's dead set, and the priority stack is
//!   repaired per access with the Mattson displacement chain over a
//!   horizon-bounded dense slab.
//!
//! Both passes accept a capacity *horizon*: distances beyond it are lumped
//! into a single always-miss bucket, which bounds the OPT stack (and the
//! distance histogram) by the largest capacity the caller will query —
//! the S grids swept by `iolb-bench` are far smaller than the traces.
//!
//! Property tests pin both curves bitwise-equal to the corresponding
//! [`LruSim`]/[`BeladySim`] replay at every capacity.
//!
//! [`LruSim`]: crate::LruSim
//! [`BeladySim`]: crate::BeladySim

use crate::{thread_next_use, Access, NIL};
use iolb_govern::{AnalysisError, CancelToken, Seam};

/// Exact miss curve of one trace under one stack policy: `loads(S)` (read
/// misses — the I/O cost in the red-white model, where write misses
/// produce their value in fast memory for free) for every capacity `S` up
/// to the engine's horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissCurve {
    /// First-touch read misses (miss at every capacity).
    cold: u64,
    /// Read misses whose stack distance exceeded the horizon (miss at
    /// every capacity `≤ horizon`; unknown beyond it).
    beyond: u64,
    /// `tail[s]` = finite-distance read misses at capacity `s`
    /// (`Σ hist[d] for s < d ≤ horizon`), for `s` in `0..=horizon`.
    tail: Vec<u64>,
    /// Largest capacity the curve answers exactly.
    horizon: usize,
    /// Total accesses profiled.
    accesses: u64,
}

impl MissCurve {
    pub(crate) fn from_histogram(cold: u64, beyond: u64, hist: &[u64], accesses: u64) -> MissCurve {
        let horizon = hist.len() - 1;
        let mut tail = vec![0u64; horizon + 1];
        for s in (0..horizon).rev() {
            tail[s] = tail[s + 1] + hist[s + 1];
        }
        MissCurve {
            cold,
            beyond,
            tail,
            horizon,
            accesses,
        }
    }

    /// Read misses at capacity `s` — bitwise what the corresponding
    /// simulator replay reports as [`IoStats::loads`](crate::IoStats).
    ///
    /// # Panics
    /// Panics when `s == 0`, or when `s` exceeds the horizon and the trace
    /// had beyond-horizon distances (the curve cannot answer there).
    pub fn loads(&self, s: usize) -> u64 {
        assert!(s >= 1, "cache capacity must be positive");
        if s >= self.horizon {
            assert!(
                self.beyond == 0 || s == self.horizon,
                "capacity {s} beyond curve horizon {}",
                self.horizon
            );
            self.cold + self.beyond
        } else {
            self.cold + self.beyond + self.tail[s]
        }
    }

    /// Largest capacity the curve answers exactly.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// First-touch read misses — the loads of an unbounded cache, and the
    /// cold floor of every capacity.
    pub fn cold_loads(&self) -> u64 {
        self.cold
    }

    /// Total accesses profiled.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

/// Fenwick (binary indexed) tree over trace positions; marks last-access
/// positions so a range count yields "distinct cells accessed since".
///
/// Counters are 64-bit: the old `u32` tree silently wrapped once a trace
/// crossed 2³² accesses (`wrapping_add` hid the overflow). Debug builds
/// additionally check every update; release builds wrap, which at 64 bits
/// is unreachable for any materializable trace.
#[derive(Debug, Default)]
pub(crate) struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    pub(crate) fn reset(&mut self, n: usize) {
        self.tree.clear();
        self.tree.resize(n + 1, 0);
    }

    #[inline]
    pub(crate) fn add(&mut self, pos: usize, delta: i64) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            #[cfg(debug_assertions)]
            {
                self.tree[i] = self.tree[i]
                    .checked_add_signed(delta)
                    .expect("Fenwick counter overflow");
            }
            #[cfg(not(debug_assertions))]
            {
                self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            }
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks at positions `0..=pos`.
    #[inline]
    pub(crate) fn prefix(&self, pos: usize) -> u64 {
        let mut i = pos + 1;
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Priority value of a stack slot: the next-use position of its cell, or
/// [`DEAD`] when the value is never read again before being overwritten
/// (the farthest possible priority — dead values sink and drop first).
const DEAD: u32 = u32::MAX;
/// Empty-slot sentinel in the segment tree (below every real priority;
/// real next-use positions are ≥ 1 because a next use is strictly later
/// than the access that set it).
const EMPTY: u32 = 0;
/// `idx_of` marker: cell sank below the horizon and was dropped.
const DROPPED: u32 = u32::MAX - 1;

/// Ceiling of the materialized engine's 32-bit id space: [`DEAD`],
/// [`DROPPED`], and [`NIL`] all live at the top of the `u32` range, so a
/// trace whose positions or distinct-value universe reach them would
/// *alias a sentinel* (a legitimate id indistinguishable from "dead" or
/// "not resident") rather than fail loudly.
pub(crate) const SENTINEL_CEILING: u64 = DROPPED as u64;

/// Refuses traces that collide with the `u32` sentinel space — a typed
/// [`AnalysisError::Refused`], never a silent wrap. The sharded streaming
/// engine ([`crate::stream`]) prices such traces in a 64-bit id space.
fn guard_sentinels(len: usize, cells: usize) -> Result<(), AnalysisError> {
    if len as u64 >= SENTINEL_CEILING {
        return Err(AnalysisError::Refused(format!(
            "curve engine: trace length {len} collides with the u32 sentinel space \
             (max {}); the sharded streaming engine prices longer traces",
            SENTINEL_CEILING - 1
        )));
    }
    if cells as u64 >= SENTINEL_CEILING {
        return Err(AnalysisError::Refused(format!(
            "curve engine: distinct-value universe {cells} collides with the u32 \
             sentinel space (max {})",
            SENTINEL_CEILING - 1
        )));
    }
    Ok(())
}

/// Reusable one-pass miss-curve profiler (all working buffers are sized
/// per run and shared across runs, never allocated per access).
#[derive(Debug, Default)]
pub struct CurveEngine {
    // Next-use chain threading (shared machinery with `BeladySim`).
    chain: Vec<u32>,
    head: Vec<u32>,
    // LRU pass.
    bit: Fenwick,
    last_pos: Vec<u32>,
    // OPT pass.
    stack: Vec<u32>,
    pri: Vec<u32>,
    idx_of: Vec<u32>,
    // Shared distance histogram (`hist[d]`, 1-indexed distances).
    hist: Vec<u64>,
}

impl CurveEngine {
    /// Fresh engine; buffers grow to the largest run.
    pub fn new() -> CurveEngine {
        CurveEngine::default()
    }

    /// LRU miss curve of a trace, exact for capacities `1..=horizon`.
    pub fn lru(&mut self, trace: &[Access], horizon: usize) -> MissCurve {
        ungoverned(self.lru_by(
            trace.len(),
            horizon,
            |t| {
                let a = trace[t];
                (a.cell, a.write)
            },
            None,
        ))
    }

    /// [`lru`](CurveEngine::lru) on a packed trace (`(cell << 1) | write`).
    pub fn lru_packed(&mut self, packed: &[u64], horizon: usize) -> MissCurve {
        ungoverned(self.lru_by(packed.len(), horizon, packed_at(packed), None))
    }

    /// Governed [`lru_packed`](CurveEngine::lru_packed): polls `token` at
    /// [`Seam::LruPass`] every 4096 positions (and at position 0), so a
    /// deadline or cancellation interrupts the pass in bounded time. The
    /// engine resets its buffers at the start of every pass, so an
    /// interrupted pass leaves no state the next run can observe.
    pub fn try_lru_packed(
        &mut self,
        packed: &[u64],
        horizon: usize,
        token: &CancelToken,
    ) -> Result<MissCurve, AnalysisError> {
        self.lru_by(packed.len(), horizon, packed_at(packed), Some(token))
    }

    /// OPT (Belady MIN) miss curve of a trace, exact for capacities
    /// `1..=horizon` — bitwise [`BeladySim`](crate::BeladySim)'s loads.
    pub fn opt(&mut self, trace: &[Access], horizon: usize) -> MissCurve {
        ungoverned(self.opt_by(
            trace.len(),
            horizon,
            |t| {
                let a = trace[t];
                (a.cell, a.write)
            },
            None,
        ))
    }

    /// [`opt`](CurveEngine::opt) on a packed trace (`(cell << 1) | write`).
    pub fn opt_packed(&mut self, packed: &[u64], horizon: usize) -> MissCurve {
        ungoverned(self.opt_by(packed.len(), horizon, packed_at(packed), None))
    }

    /// Governed [`opt_packed`](CurveEngine::opt_packed): polls `token` at
    /// [`Seam::OptPass`] every 4096 positions (and at position 0); see
    /// [`try_lru_packed`](CurveEngine::try_lru_packed) for the reuse
    /// guarantee after an interrupted pass.
    pub fn try_opt_packed(
        &mut self,
        packed: &[u64],
        horizon: usize,
        token: &CancelToken,
    ) -> Result<MissCurve, AnalysisError> {
        self.opt_by(packed.len(), horizon, packed_at(packed), Some(token))
    }

    /// LRU stack distances: the distance of an access is one plus the
    /// number of distinct cells accessed since the previous access of the
    /// same cell — counted by marking each cell's last-access position in
    /// a Fenwick tree and summing the window between two touches.
    fn lru_by(
        &mut self,
        len: usize,
        horizon: usize,
        at: impl Fn(usize) -> (usize, bool),
        token: Option<&CancelToken>,
    ) -> Result<MissCurve, AnalysisError> {
        assert!(horizon >= 1, "curve horizon must be positive");
        let cells = max_cell(len, &at);
        guard_sentinels(len, cells)?;
        self.bit.reset(len);
        self.last_pos.clear();
        self.last_pos.resize(cells, NIL);
        self.hist.clear();
        self.hist.resize(horizon + 1, 0);
        let (mut cold, mut beyond) = (0u64, 0u64);

        for t in 0..len {
            if t & 0xFFF == 0 {
                if let Some(token) = token {
                    token.check(Seam::LruPass)?;
                }
            }
            let (cell, write) = at(t);
            let lp = self.last_pos[cell];
            if lp == NIL {
                if !write {
                    cold += 1;
                }
            } else {
                // Distinct cells accessed strictly between the touches:
                // exactly the last-access marks in (lp, t).
                let between = self.bit.prefix(t - 1) - self.bit.prefix(lp as usize);
                let d = between as usize + 1;
                debug_assert!(between < len as u64, "reuse window wider than trace");
                if !write {
                    if d <= horizon {
                        self.hist[d] += 1;
                    } else {
                        beyond += 1;
                    }
                }
                self.bit.add(lp as usize, -1);
            }
            self.bit.add(t, 1);
            self.last_pos[cell] = t as u32;
        }
        Ok(MissCurve::from_histogram(
            cold, beyond, &self.hist, len as u64,
        ))
    }

    /// OPT stack distances: the priority stack keeps cells ordered so that
    /// the top `S` entries are exactly the residents of a capacity-`S`
    /// MIN cache. An access to the cell at position `d` records distance
    /// `d`, moves the cell to the top, and repairs positions `2..d` by the
    /// Mattson displacement rule: a *carry* (initially the old top) walks
    /// down and swaps with each successive cell whose next use is strictly
    /// farther — precisely the victims the per-capacity caches evict. Cold
    /// accesses displace through the whole stack and push the final carry
    /// below everything (or drop it past the horizon).
    ///
    /// The repair is a plain bounded linear scan over the priority slab:
    /// the stack never outgrows the horizon, distances are small for the
    /// reuse-heavy traces this profiles, and a sequential compare-and-swap
    /// sweep over a dense `u32` array is substantially cheaper per swap
    /// than any tree-indexed scheme at these sizes (swap-heavy chains pay
    /// a register swap, not a path update).
    fn opt_by(
        &mut self,
        len: usize,
        horizon: usize,
        at: impl Fn(usize) -> (usize, bool),
        token: Option<&CancelToken>,
    ) -> Result<MissCurve, AnalysisError> {
        assert!(horizon >= 1, "curve horizon must be positive");
        guard_sentinels(len, max_cell(len, &at))?;
        let cells = thread_next_use(len, &at, &mut self.chain, &mut self.head);
        self.stack.clear();
        self.pri.clear();
        self.pri.resize(horizon, EMPTY);
        self.idx_of.clear();
        self.idx_of.resize(cells, NIL);
        self.hist.clear();
        self.hist.resize(horizon + 1, 0);
        let (mut cold, mut beyond) = (0u64, 0u64);

        for t in 0..len {
            if t & 0xFFF == 0 {
                if let Some(token) = token {
                    token.check(Seam::OptPass)?;
                }
            }
            let (cell, write) = at(t);
            // Priority after this access: the next-use position, except
            // that a pending overwrite (or no further use) kills the value
            // — it re-materializes for free at its next write, so every
            // capacity evicts it first. Mirrors `BeladySim`'s dead set.
            let nu = self.chain[t];
            let new_pri = if nu == NIL || at(nu as usize).1 {
                DEAD
            } else {
                nu
            };
            let slot = self.idx_of[cell];
            if slot == NIL || slot == DROPPED {
                if !write {
                    if slot == NIL {
                        cold += 1;
                    } else {
                        beyond += 1;
                    }
                }
                // Insert at the top; the displaced carry chains through
                // the whole stack (a miss at every capacity) and the final
                // carry becomes the new bottom — or drops off the horizon.
                if self.stack.is_empty() {
                    self.stack.push(cell as u32);
                    self.place(0, cell as u32, new_pri);
                } else {
                    let (carry, carry_pri) = self.displace_top(cell as u32, new_pri);
                    let (carry, carry_pri) =
                        self.chain_swaps(1, self.stack.len() - 1, carry, carry_pri);
                    if self.stack.len() < self.pri.len() {
                        let bottom = self.stack.len();
                        self.stack.push(carry);
                        self.place(bottom, carry, carry_pri);
                    } else {
                        self.idx_of[carry as usize] = DROPPED;
                    }
                }
            } else {
                let slot = slot as usize;
                let d = slot + 1;
                if !write {
                    debug_assert!(d <= horizon);
                    self.hist[d] += 1;
                }
                if slot == 0 {
                    self.pri[0] = new_pri;
                } else {
                    let (carry, carry_pri) = self.displace_top(cell as u32, new_pri);
                    let (carry, carry_pri) = self.chain_swaps(1, slot - 1, carry, carry_pri);
                    self.stack[slot] = carry;
                    self.place(slot, carry, carry_pri);
                }
            }
        }
        Ok(MissCurve::from_histogram(
            cold, beyond, &self.hist, len as u64,
        ))
    }

    /// Writes `cell` with `pri` into `slot` (stack content already set by
    /// the caller where needed).
    #[inline]
    fn place(&mut self, slot: usize, cell: u32, pri: u32) {
        self.idx_of[cell as usize] = slot as u32;
        self.pri[slot] = pri;
    }

    /// Puts `cell` on top of the stack, returning the displaced old top
    /// as the initial carry.
    #[inline]
    fn displace_top(&mut self, cell: u32, new_pri: u32) -> (u32, u32) {
        let carry = self.stack[0];
        let carry_pri = self.pri[0];
        self.stack[0] = cell;
        self.place(0, cell, new_pri);
        (carry, carry_pri)
    }

    /// Runs the displacement chain over slots `[lo, hi]`: swaps the carry
    /// with each successive strictly-farther cell, returning the final
    /// carry. A dead carry (`DEAD` priority) short-circuits: nothing is
    /// strictly farther, so the rest of the span is untouched.
    #[inline]
    fn chain_swaps(
        &mut self,
        lo: usize,
        hi: usize,
        mut carry: u32,
        mut carry_pri: u32,
    ) -> (u32, u32) {
        for k in lo..=hi {
            if carry_pri == DEAD {
                break;
            }
            if self.pri[k] > carry_pri {
                let (c, p) = (self.stack[k], self.pri[k]);
                self.stack[k] = carry;
                self.idx_of[carry as usize] = k as u32;
                self.pri[k] = carry_pri;
                (carry, carry_pri) = (c, p);
            }
        }
        (carry, carry_pri)
    }
}

/// Accessor closure over a packed trace (`(cell << 1) | write`).
#[inline]
fn packed_at(packed: &[u64]) -> impl Fn(usize) -> (usize, bool) + '_ {
    |t| {
        let p = packed[t];
        ((p >> 1) as usize, (p & 1) == 1)
    }
}

/// Unwraps a pass run without a token: no cancellation source exists, so
/// the only reachable error is the sentinel-space refusal, which the
/// panicking convenience APIs surface as a panic.
#[inline]
fn ungoverned(r: Result<MissCurve, AnalysisError>) -> MissCurve {
    r.unwrap_or_else(|e| panic!("ungoverned curve pass failed: {e}"))
}

#[inline]
fn max_cell(len: usize, at: &impl Fn(usize) -> (usize, bool)) -> usize {
    let mut m = 0usize;
    for t in 0..len {
        m = m.max(at(t).0);
    }
    if len == 0 {
        0
    } else {
        m + 1
    }
}

/// Convenience: full-horizon LRU miss curve (exact at every capacity).
pub fn lru_miss_curve(trace: &[Access]) -> MissCurve {
    CurveEngine::new().lru(trace, trace.len().max(1))
}

/// Convenience: full-horizon OPT miss curve (exact at every capacity).
pub fn opt_miss_curve(trace: &[Access]) -> MissCurve {
    CurveEngine::new().opt(trace, trace.len().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lru_stats, min_stats};
    use proptest::prelude::*;

    fn reads(cells: &[usize]) -> Vec<Access> {
        cells.iter().map(|&c| Access::read(c)).collect()
    }

    #[test]
    fn lru_curve_on_a_hand_trace() {
        // 0 1 2 0: distances ∞ ∞ ∞ 3 → loads(2) = 4, loads(3) = 3.
        let t = reads(&[0, 1, 2, 0]);
        let c = lru_miss_curve(&t);
        assert_eq!(c.loads(1), 4);
        assert_eq!(c.loads(2), 4);
        assert_eq!(c.loads(3), 3);
        assert_eq!(c.loads(4), 3);
        assert_eq!(c.cold_loads(), 3);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn opt_curve_beats_lru_curve_on_looping_scan() {
        let t = reads(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let lru = lru_miss_curve(&t);
        let opt = opt_miss_curve(&t);
        assert_eq!(lru.loads(2), 9, "LRU thrashes the cyclic scan");
        assert!(opt.loads(2) < 9);
        assert_eq!(opt.loads(2), min_stats(2, &t).loads);
    }

    #[test]
    fn horizon_truncates_but_stays_exact_below() {
        let t = reads(&[0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        let full = opt_miss_curve(&t);
        let capped = CurveEngine::new().opt(&t, 3);
        for s in 1..=3 {
            assert_eq!(capped.loads(s), full.loads(s), "S={s}");
        }
        assert_eq!(capped.horizon(), 3);
    }

    #[test]
    #[should_panic(expected = "beyond curve horizon")]
    fn querying_past_a_truncated_horizon_panics() {
        let t = reads(&[0, 1, 2, 3, 4, 0]);
        let capped = CurveEngine::new().lru(&t, 2);
        let _ = capped.loads(5);
    }

    #[test]
    fn empty_trace_makes_an_empty_curve() {
        let c = lru_miss_curve(&[]);
        assert_eq!(c.loads(1), 0);
        assert_eq!(opt_miss_curve(&[]).loads(1), 0);
        assert_eq!(c.cold_loads(), 0);
        assert_eq!(c.accesses(), 0);
        // The convenience constructors clamp the horizon to ≥ 1, so an
        // empty trace still answers capacity 1.
        assert_eq!(c.horizon(), 1);
    }

    #[test]
    fn single_element_traces() {
        // A single read is one cold miss at every capacity.
        let read = reads(&[5]);
        let mut e = CurveEngine::new();
        for curve in [e.lru(&read, 4), e.opt(&read, 4)] {
            assert_eq!(curve.loads(1), 1);
            assert_eq!(curve.loads(4), 1);
            assert_eq!(curve.cold_loads(), 1);
            assert_eq!(curve.accesses(), 1);
        }
        // A single write is free in the red-white model: zero loads.
        let write = vec![Access::write(5)];
        for curve in [e.lru(&write, 4), e.opt(&write, 4)] {
            assert_eq!(curve.loads(1), 0);
            assert_eq!(curve.cold_loads(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "cache capacity must be positive")]
    fn capacity_zero_is_rejected() {
        let _ = lru_miss_curve(&reads(&[0, 1])).loads(0);
    }

    #[test]
    #[should_panic(expected = "curve horizon must be positive")]
    fn lru_horizon_zero_is_rejected() {
        let _ = CurveEngine::new().lru(&reads(&[0, 1]), 0);
    }

    #[test]
    #[should_panic(expected = "curve horizon must be positive")]
    fn opt_horizon_zero_is_rejected() {
        let _ = CurveEngine::new().opt(&reads(&[0, 1]), 0);
    }

    #[test]
    fn capacity_one_equals_per_access_misses_without_immediate_reuse() {
        // With S = 1 every alternating access misses under both policies.
        let t = reads(&[0, 1, 0, 1, 0]);
        assert_eq!(lru_miss_curve(&t).loads(1), 5);
        assert_eq!(opt_miss_curve(&t).loads(1), 5);
        // Immediate reuse hits even at S = 1.
        let t = reads(&[7, 7, 7]);
        assert_eq!(lru_miss_curve(&t).loads(1), 1);
        assert_eq!(opt_miss_curve(&t).loads(1), 1);
    }

    #[test]
    fn all_distinct_trace_collapses_lru_opt_and_cold() {
        // No reuse at all: every policy pays exactly the cold misses at
        // every capacity, so the curves are flat and identical.
        let t = reads(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let lru = lru_miss_curve(&t);
        let opt = opt_miss_curve(&t);
        for s in 1..=t.len() {
            assert_eq!(lru.loads(s), t.len() as u64, "S={s}");
            assert_eq!(opt.loads(s), t.len() as u64, "S={s}");
            assert_eq!(lru.loads(s), lru.cold_loads());
            assert_eq!(opt.loads(s), opt.cold_loads());
        }
    }

    #[test]
    fn engine_buffers_are_reusable() {
        let mut e = CurveEngine::new();
        let t1 = reads(&[0, 1, 2, 0, 1, 2]);
        let a = e.opt(&t1, 6);
        let b = e.opt(&t1, 6);
        assert_eq!(a, b);
        let t2 = vec![Access::write(9), Access::read(9)];
        let c = e.lru(&t2, 2);
        assert_eq!(c.loads(1), 0, "write allocates, read hits");
    }

    /// Regression (integer width): the reuse-distance Fenwick accumulated
    /// in `u32` with `wrapping_add`, so any count crossing 2³² wrapped
    /// silently. Drive the counters past the old width directly — the
    /// per-access loop would take hours of wall clock to get there — and
    /// require exact 64-bit totals. Red on the old `u32` tree (the total
    /// wraps to `5 << 30 mod 2³²`), green on the widened one.
    #[test]
    fn fenwick_counts_survive_the_u32_width() {
        let mut f = Fenwick::default();
        f.reset(8);
        const STEP: i64 = 1 << 30;
        for _ in 0..5 {
            f.add(3, STEP); // 5 × 2³⁰ > u32::MAX
        }
        f.add(5, 7);
        assert_eq!(f.prefix(2), 0);
        assert_eq!(f.prefix(3), 5 * STEP as u64);
        assert_eq!(f.prefix(7), 5 * STEP as u64 + 7);
        for _ in 0..5 {
            f.add(3, -STEP);
        }
        assert_eq!(f.prefix(7), 7, "negative deltas cancel exactly");
    }

    /// Sentinel-space audit: a trace whose value universe reaches the
    /// `u32` sentinels (`DEAD`/`DROPPED`/`NIL` at the top of the range)
    /// is refused with a typed error — never silently aliased.
    #[test]
    fn sentinel_collision_is_refused_not_wrapped() {
        let token = CancelToken::unlimited();
        let mut e = CurveEngine::new();
        for cell in [u32::MAX as u64, DROPPED as u64] {
            let packed = [cell << 1];
            for r in [
                e.try_lru_packed(&packed, 4, &token),
                e.try_opt_packed(&packed, 4, &token),
            ] {
                match r {
                    Err(AnalysisError::Refused(msg)) => {
                        assert!(msg.contains("sentinel"), "{msg}");
                    }
                    other => panic!("expected Refused, got {other:?}"),
                }
            }
        }
        // Just below the ceiling the id space is still addressable in
        // principle; the guard must key on the ceiling, not on "large".
        assert!((DROPPED as u64 - 1) < super::SENTINEL_CEILING);
    }

    /// The ungoverned convenience APIs turn the refusal into a panic
    /// rather than returning a wrapped curve.
    #[test]
    #[should_panic(expected = "sentinel")]
    fn ungoverned_sentinel_collision_panics() {
        let _ = CurveEngine::new().lru_packed(&[(u32::MAX as u64) << 1], 4);
    }

    fn arb_trace() -> impl Strategy<Value = Vec<Access>> {
        proptest::collection::vec((0usize..12, proptest::bool::ANY), 1..200).prop_map(|v| {
            v.into_iter()
                .map(|(cell, write)| Access { cell, write })
                .collect()
        })
    }

    proptest! {
        /// The one-pass LRU curve is bitwise the `LruSim` replay at EVERY
        /// capacity — the Mattson stack property, checked exhaustively.
        #[test]
        fn lru_curve_matches_replay_at_every_capacity(t in arb_trace()) {
            let curve = lru_miss_curve(&t);
            for s in 1..=t.len() {
                prop_assert_eq!(curve.loads(s), lru_stats(s, &t).loads, "S={}", s);
            }
        }

        /// The one-pass OPT curve is bitwise the `BeladySim` replay at
        /// EVERY capacity.
        #[test]
        fn opt_curve_matches_replay_at_every_capacity(t in arb_trace()) {
            let curve = opt_miss_curve(&t);
            for s in 1..=t.len() {
                prop_assert_eq!(curve.loads(s), min_stats(s, &t).loads, "S={}", s);
            }
        }

        /// Truncated horizons agree with the full curve below the cap.
        #[test]
        fn truncated_curves_stay_exact(t in arb_trace(), horizon in 1usize..16) {
            let mut e = CurveEngine::new();
            let lru = e.lru(&t, horizon);
            let opt = e.opt(&t, horizon);
            for s in 1..=horizon.min(t.len().max(1)) {
                prop_assert_eq!(lru.loads(s), lru_stats(s, &t).loads, "lru S={}", s);
                prop_assert_eq!(opt.loads(s), min_stats(s, &t).loads, "opt S={}", s);
            }
        }

        /// Packed and struct traces produce identical curves.
        #[test]
        fn packed_matches_structs(t in arb_trace()) {
            let packed: Vec<u64> = t
                .iter()
                .map(|a| ((a.cell as u64) << 1) | a.write as u64)
                .collect();
            let mut e = CurveEngine::new();
            prop_assert_eq!(e.lru(&t, 16), e.lru_packed(&packed, 16));
            prop_assert_eq!(e.opt(&t, 16), e.opt_packed(&packed, 16));
        }

        /// OPT is optimal: its curve sits at or below LRU's pointwise, and
        /// both decrease monotonically to the cold floor.
        #[test]
        fn curves_are_ordered_and_monotone(t in arb_trace()) {
            let lru = lru_miss_curve(&t);
            let opt = opt_miss_curve(&t);
            let mut prev = u64::MAX;
            for s in 1..=t.len() {
                prop_assert!(opt.loads(s) <= lru.loads(s));
                prop_assert!(opt.loads(s) <= prev);
                prev = opt.loads(s);
                prop_assert!(lru.loads(s) >= lru.cold_loads());
            }
            prop_assert_eq!(opt.loads(t.len()), opt.cold_loads());
        }
    }
}
