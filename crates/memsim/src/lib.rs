//! Two-level memory simulator at element granularity.
//!
//! The paper's model (§2) has a small fast memory of size `S` and an
//! unbounded slow memory; the I/O cost of a schedule is the number of
//! transfers. This crate measures exactly that for concrete access traces:
//!
//! * [`LruSim`] — fully-associative LRU replacement, O(1) per access,
//!   streaming (no trace materialization needed),
//! * [`BeladySim`] — Belady's MIN (optimal offline replacement for a fixed
//!   schedule), one reverse pass to thread next-use chains through the
//!   trace, then one forward pass over a hierarchical-bitmap "farthest
//!   resident position" structure — no per-access allocation, and all
//!   working buffers are reused across runs,
//! * [`CurveEngine`] — one-pass stack-distance profilers producing the
//!   exact [`MissCurve`] `loads(S)` of a trace for *every* capacity at
//!   once, for both policies (see [`curve`]),
//! * write semantics follow the red-white pebble game: a write *produces*
//!   the value in fast memory (no load on a write miss); evicting a dirty
//!   element counts a writeback. Because an overwrite re-materializes the
//!   value for free, a resident element whose next access is a write is
//!   *dead* — [`BeladySim`] evicts such elements first (alongside the
//!   never-used-again ones), which is what makes it exactly optimal for
//!   this cost model rather than merely next-access-greedy.
//!
//! Cell ids are expected to be *dense* (array base offset + flat element
//! index, as produced by the IR trace sinks); every structure here is a flat
//! slab indexed by cell or by trace position — the hot paths perform no
//! hashing and no ordered-map rebalancing.
//!
//! Measured `loads` of any schedule are an upper bound witness: lower bounds
//! derived by `iolb-core` must sit below them.

pub mod curve;
pub mod stream;

pub use curve::{lru_miss_curve, opt_miss_curve, CurveEngine, MissCurve};
pub use stream::{ChunkedTrace, ShardedCurveEngine, DEFAULT_CHUNK_LEN};

/// One memory access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Global element id.
    pub cell: usize,
    /// True for writes.
    pub write: bool,
}

impl Access {
    /// Read access.
    pub fn read(cell: usize) -> Access {
        Access { cell, write: false }
    }
    /// Write access.
    pub fn write(cell: usize) -> Access {
        Access { cell, write: true }
    }
}

/// I/O statistics of one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Loads: slow→fast transfers (read misses).
    pub loads: u64,
    /// Writebacks: dirty evictions plus the final dirty flush.
    pub writebacks: u64,
    /// Total accesses processed.
    pub accesses: u64,
    /// Peak number of resident elements.
    pub peak_resident: usize,
}

impl IoStats {
    /// Loads + writebacks.
    pub fn total(&self) -> u64 {
        self.loads + self.writebacks
    }
}

pub(crate) const NIL: u32 = u32::MAX;

/// Reverse-pass next-use threading shared by [`BeladySim`] and the
/// stack-distance profilers in [`curve`]: after the call, `chain[t]` is
/// the next position accessing the same cell as position `t` ([`NIL`]
/// when there is none). Returns the cell-id universe size.
pub(crate) fn thread_next_use(
    len: usize,
    at: &impl Fn(usize) -> (usize, bool),
    chain: &mut Vec<u32>,
    head: &mut Vec<u32>,
) -> usize {
    let mut max_cell = 0usize;
    for t in 0..len {
        max_cell = max_cell.max(at(t).0);
    }
    let cells = if len == 0 { 0 } else { max_cell + 1 };
    chain.clear();
    chain.resize(len, NIL);
    head.clear();
    head.resize(cells, NIL);
    for t in (0..len).rev() {
        let (cell, _) = at(t);
        chain[t] = head[cell];
        head[cell] = t as u32;
    }
    cells
}

/// Fully-associative LRU cache of `capacity` elements, O(1) per access.
///
/// Implemented as an intrusive doubly-linked list over a slab of at most
/// `capacity` slots, with a flat cell→slot table (grown on demand — cell
/// ids are dense program offsets, so this is a plain array lookup, not a
/// hash). Each slab slot packs cell, links, and the dirty flag into one
/// 16-byte record, so a hit touches one cache line of the slab.
#[derive(Debug)]
pub struct LruSim {
    capacity: usize,
    /// cell → slot, NIL when not resident. Grows to the largest cell seen.
    slot_of: Vec<u32>,
    resident: usize,
    slots: Vec<Slot>,
    head: u32, // most recently used
    tail: u32, // least recently used
    stats: IoStats,
}

/// One slab record of [`LruSim`] (16 bytes).
#[derive(Debug, Clone, Copy)]
struct Slot {
    cell: u32,
    prev: u32,
    next: u32,
    dirty: u32,
}

impl LruSim {
    /// Creates a simulator with the given fast-memory capacity (elements).
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> LruSim {
        assert!(capacity > 0, "cache capacity must be positive");
        LruSim {
            capacity,
            slot_of: Vec::new(),
            resident: 0,
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            stats: IoStats::default(),
        }
    }

    /// Creates a simulator that additionally pre-sizes the cell table for
    /// ids `< num_cells` (avoids growth stalls on the streaming path).
    pub fn with_cells(capacity: usize, num_cells: usize) -> LruSim {
        let mut sim = LruSim::new(capacity);
        sim.slot_of = vec![NIL; num_cells];
        sim
    }

    #[inline]
    fn slot_entry(&mut self, cell: usize) -> u32 {
        if cell >= self.slot_of.len() {
            assert!(cell < NIL as usize, "cell id out of range");
            self.slot_of.resize(cell + 1, NIL);
        }
        self.slot_of[cell]
    }

    /// Processes one access.
    #[inline]
    pub fn access(&mut self, a: Access) {
        self.stats.accesses += 1;
        self.access_uncounted(a);
    }

    /// Access without the `accesses` counter (bulk paths count once).
    #[inline]
    fn access_uncounted(&mut self, a: Access) {
        let slot = self.slot_entry(a.cell);
        if slot != NIL {
            // Hit: refresh recency (no-op when already most recent).
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            if a.write {
                self.slots[slot as usize].dirty = 1;
            }
            return;
        }
        // Miss.
        if !a.write {
            self.stats.loads += 1;
        }
        let slot = if self.resident == self.capacity {
            self.recycle_lru(a.cell, a.write)
        } else {
            self.resident += 1;
            self.stats.peak_resident = self.stats.peak_resident.max(self.resident);
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                cell: a.cell as u32,
                prev: NIL,
                next: NIL,
                dirty: a.write as u32,
            });
            slot
        };
        self.push_front(slot);
        self.slot_of[a.cell] = slot;
    }

    /// Processes a read.
    #[inline]
    pub fn read(&mut self, cell: usize) {
        self.access(Access::read(cell));
    }

    /// Processes a write.
    #[inline]
    pub fn write(&mut self, cell: usize) {
        self.access(Access::write(cell));
    }

    /// Runs a whole trace.
    pub fn run<'a>(&mut self, trace: impl IntoIterator<Item = &'a Access>) -> IoStats {
        for a in trace {
            self.access(*a);
        }
        self.stats
    }

    /// Bulk entry point: runs a materialized trace slice.
    ///
    /// Identical semantics to calling [`access`](LruSim::access) per
    /// element; the slice form lets the compiler unroll the dispatch-free
    /// inner loop.
    pub fn run_trace(&mut self, trace: &[Access]) -> IoStats {
        self.stats.accesses += trace.len() as u64;
        for &a in trace {
            self.access_uncounted(a);
        }
        self.stats
    }

    /// Runs a packed trace (`(cell << 1) | write` per event, the `iolb-ir`
    /// `TraceSink` encoding) without decoding into [`Access`] structs.
    pub fn run_packed(&mut self, packed: &[u64]) -> IoStats {
        self.stats.accesses += packed.len() as u64;
        for &p in packed {
            self.access_uncounted(Access {
                cell: (p >> 1) as usize,
                write: (p & 1) == 1,
            });
        }
        self.stats
    }

    /// Statistics so far (without final flush).
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Flushes remaining dirty elements (counts writebacks) and returns the
    /// final statistics.
    pub fn finish(mut self) -> IoStats {
        let mut v = self.head;
        let mut dirty_resident = 0u64;
        while v != NIL {
            if self.slots[v as usize].dirty != 0 {
                dirty_resident += 1;
            }
            v = self.slots[v as usize].next;
        }
        self.stats.writebacks += dirty_resident;
        self.stats
    }

    #[inline]
    fn push_front(&mut self, slot: u32) {
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    #[inline]
    fn unlink(&mut self, slot: u32) {
        let Slot {
            prev: p, next: n, ..
        } = self.slots[slot as usize];
        if p != NIL {
            self.slots[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slots[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    /// Evicts the LRU element and reuses its slot for `cell` (unlinked;
    /// caller pushes it to the front).
    #[inline]
    fn recycle_lru(&mut self, cell: usize, dirty: bool) -> u32 {
        let victim = self.tail;
        assert!(victim != NIL, "evict from empty cache");
        self.unlink(victim);
        let s = &mut self.slots[victim as usize];
        if s.dirty != 0 {
            self.stats.writebacks += 1;
        }
        let old_cell = s.cell;
        *s = Slot {
            cell: cell as u32,
            prev: NIL,
            next: NIL,
            dirty: dirty as u32,
        };
        self.slot_of[old_cell as usize] = NIL;
        victim
    }
}

/// Hierarchical bitmap over a dense position universe answering `max` /
/// `set` / `clear` in a handful of word operations (three u64 levels ≈
/// positions up to 2²⁴ in two cache lines of summaries).
///
/// This is the replacement-policy workhorse shared by the simulators here
/// and the pebble-game engine in `iolb-cdag`: "farthest next use" queries
/// reduce to `max` over a set of positions.
#[derive(Debug, Default)]
pub struct MaxPosSet {
    l0: Vec<u64>,
    l1: Vec<u64>,
    l2: Vec<u64>,
}

impl MaxPosSet {
    /// Creates an empty set over positions `0..n`.
    pub fn new(n: usize) -> MaxPosSet {
        let mut s = MaxPosSet::default();
        s.reset(n);
        s
    }

    /// Clears the set and resizes it to positions `0..n`.
    pub fn reset(&mut self, n: usize) {
        let w0 = n.div_ceil(64);
        let w1 = w0.div_ceil(64);
        let w2 = w1.div_ceil(64).max(1);
        self.l0.clear();
        self.l0.resize(w0.max(1), 0);
        self.l1.clear();
        self.l1.resize(w1.max(1), 0);
        self.l2.clear();
        self.l2.resize(w2, 0);
    }

    /// Inserts `pos`.
    #[inline]
    pub fn set(&mut self, pos: usize) {
        self.l0[pos >> 6] |= 1 << (pos & 63);
        self.l1[pos >> 12] |= 1 << ((pos >> 6) & 63);
        self.l2[pos >> 18] |= 1 << ((pos >> 12) & 63);
    }

    /// Removes `pos` (no-op when absent... except the summary bits assume
    /// it was present — only clear positions previously set).
    #[inline]
    pub fn clear(&mut self, pos: usize) {
        let w0 = pos >> 6;
        self.l0[w0] &= !(1 << (pos & 63));
        if self.l0[w0] == 0 {
            let w1 = pos >> 12;
            self.l1[w1] &= !(1 << (w0 & 63));
            if self.l1[w1] == 0 {
                self.l2[pos >> 18] &= !(1 << (w1 & 63));
            }
        }
    }

    /// Highest set position, if any.
    #[inline]
    pub fn max(&self) -> Option<usize> {
        let w2 = self.l2.iter().rposition(|&w| w != 0)?;
        let b2 = 63 - self.l2[w2].leading_zeros() as usize;
        let w1 = (w2 << 6) | b2;
        let b1 = 63 - self.l1[w1].leading_zeros() as usize;
        let w0 = (w1 << 6) | b1;
        let b0 = 63 - self.l0[w0].leading_zeros() as usize;
        Some((w0 << 6) | b0)
    }
}

/// Belady's MIN: optimal replacement for a fixed trace.
///
/// One reverse pass threads a next-use chain through the trace (`chain[t]` =
/// next position touching `trace[t]`'s cell); the forward pass keeps the
/// resident set as the *set of next-use positions* in a [`MaxPosSet`] — the
/// victim is the maximum position, and `trace[pos]` recovers its cell, so no
/// ordered map and no per-access allocation is needed.
///
/// A resident element is *dead* when it is never read again before being
/// overwritten (its next access is a write, or there is none): a write
/// miss produces its value in fast memory for free, so evicting a dead
/// element can never cost a load. Dead elements live in their own
/// [`MaxPosSet`] (keyed by cell, matching the reference engine's largest-
/// tie-break) and are evicted first — they compare as `+∞`. This
/// write-kill rule is what makes the greedy farthest-next-use policy
/// *exactly* optimal under the red-white cost model; without it, MIN
/// pointlessly retains values whose next event is their own overwrite.
///
/// All buffers are reused across [`run`](BeladySim::run) calls on the same
/// simulator.
#[derive(Debug)]
pub struct BeladySim {
    capacity: usize,
    // Reusable buffers (sized per run, never per access).
    chain: Vec<u32>,
    head: Vec<u32>,
    next_pos: Vec<u32>,
    dirty: Vec<bool>,
    is_resident: Vec<bool>,
    alive: MaxPosSet,
    dead: MaxPosSet,
}

impl BeladySim {
    /// Creates a MIN simulator with the given capacity.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> BeladySim {
        assert!(capacity > 0, "cache capacity must be positive");
        BeladySim {
            capacity,
            chain: Vec::new(),
            head: Vec::new(),
            next_pos: Vec::new(),
            dirty: Vec::new(),
            is_resident: Vec::new(),
            alive: MaxPosSet::default(),
            dead: MaxPosSet::default(),
        }
    }

    /// Simulates the trace under optimal replacement.
    pub fn run(&mut self, trace: &[Access]) -> IoStats {
        self.run_by(trace.len(), |t| {
            let a = trace[t];
            (a.cell, a.write)
        })
    }

    /// Simulates a packed trace (`(cell << 1) | write` per event, the
    /// `iolb-ir` `TraceSink` encoding) without decoding it into
    /// [`Access`] structs first.
    pub fn run_packed(&mut self, packed: &[u64]) -> IoStats {
        self.run_by(packed.len(), |t| {
            let p = packed[t];
            ((p >> 1) as usize, (p & 1) == 1)
        })
    }

    /// Core simulation, monomorphized over the trace accessor
    /// (`at(t) -> (cell, write)` must be pure).
    fn run_by(&mut self, len: usize, at: impl Fn(usize) -> (usize, bool)) -> IoStats {
        // Reverse pass: chain[t] = next position accessing the same cell.
        let cells = thread_next_use(len, &at, &mut self.chain, &mut self.head);

        // Forward pass state, all dense by cell or position.
        self.next_pos.clear();
        self.next_pos.resize(cells, NIL);
        self.dirty.clear();
        self.dirty.resize(cells, false);
        self.is_resident.clear();
        self.is_resident.resize(cells, false);
        self.alive.reset(len);
        self.dead.reset(cells);

        let mut stats = IoStats::default();
        let mut resident = 0usize;
        for t in 0..len {
            let (cell, write) = at(t);
            stats.accesses += 1;
            let nu = self.chain[t];
            // The value is dead after this access when it is never read
            // again before its next overwrite (write-kill rule).
            let goes_dead = nu == NIL || at(nu as usize).1;
            if self.is_resident[cell] {
                // Hit: reposition by new next use. The cell was tracked
                // alive exactly when this access is a read (a pending
                // write meant it sat in the dead set).
                debug_assert_eq!(self.next_pos[cell], t as u32);
                if write {
                    self.dead.clear(cell);
                } else {
                    self.alive.clear(t);
                }
                if goes_dead {
                    self.dead.set(cell);
                } else {
                    self.alive.set(nu as usize);
                }
                self.next_pos[cell] = nu;
                if write {
                    self.dirty[cell] = true;
                }
                continue;
            }
            // Miss.
            if !write {
                stats.loads += 1;
            }
            if resident == self.capacity {
                // Victim: any dead element first (+∞ key; largest cell id
                // — the reference engine's tie-break), otherwise the
                // maximum next-use position.
                let victim = match self.dead.max() {
                    Some(c) => {
                        self.dead.clear(c);
                        c
                    }
                    None => {
                        let pos = self.alive.max().expect("resident set not empty");
                        self.alive.clear(pos);
                        at(pos).0
                    }
                };
                self.is_resident[victim] = false;
                resident -= 1;
                if std::mem::replace(&mut self.dirty[victim], false) {
                    stats.writebacks += 1;
                }
            }
            self.is_resident[cell] = true;
            self.next_pos[cell] = nu;
            if goes_dead {
                self.dead.set(cell);
            } else {
                self.alive.set(nu as usize);
            }
            self.dirty[cell] = write;
            resident += 1;
            stats.peak_resident = stats.peak_resident.max(resident);
        }
        // Final flush of dirty residents.
        stats.writebacks += self.dirty.iter().filter(|&&d| d).count() as u64;
        stats
    }
}

/// Convenience: LRU stats for a trace (with final dirty flush).
pub fn lru_stats(capacity: usize, trace: &[Access]) -> IoStats {
    let mut sim = LruSim::new(capacity);
    sim.run_trace(trace);
    sim.finish()
}

/// Convenience: MIN (optimal) stats for a trace.
pub fn min_stats(capacity: usize, trace: &[Access]) -> IoStats {
    BeladySim::new(capacity).run(trace)
}

/// Number of distinct cells read before being written (cold loads — the
/// unavoidable input loads of any schedule).
pub fn cold_loads(trace: &[Access]) -> u64 {
    let max_cell = trace.iter().map(|a| a.cell).max().unwrap_or(0);
    // 0 = unseen, 1 = written first, 2 = counted as cold read.
    let mut state = vec![0u8; max_cell + 1];
    let mut loads = 0;
    for a in trace {
        let s = &mut state[a.cell];
        if a.write {
            if *s == 0 {
                *s = 1;
            }
        } else if *s == 0 {
            *s = 2;
            loads += 1;
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reads(cells: &[usize]) -> Vec<Access> {
        cells.iter().map(|&c| Access::read(c)).collect()
    }

    #[test]
    fn lru_basic_hits_and_misses() {
        let t = reads(&[0, 1, 0, 2, 0]);
        let s = lru_stats(2, &t);
        assert_eq!(s.loads, 3);
        assert_eq!(s.writebacks, 0);
        assert_eq!(s.accesses, 5);
        assert_eq!(s.peak_resident, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // capacity 2: a b c → evict a; then a misses again.
        let t = reads(&[0, 1, 2, 0]);
        assert_eq!(lru_stats(2, &t).loads, 4);
        // capacity 3 keeps everything.
        assert_eq!(lru_stats(3, &t).loads, 3);
    }

    #[test]
    fn write_miss_costs_no_load() {
        let t = vec![Access::write(0), Access::read(0)];
        let s = lru_stats(4, &t);
        assert_eq!(s.loads, 0);
        // Final flush writes the dirty cell back once.
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        // capacity 1: write 0, read 1 → 0 evicted dirty.
        let t = vec![Access::write(0), Access::read(1)];
        let s = lru_stats(1, &t);
        assert_eq!(s.loads, 1);
        assert_eq!(s.writebacks, 1);
    }

    /// The write-kill rule: a resident value whose next access is its own
    /// overwrite is evicted for free, which plain next-access-greedy
    /// Belady misses. This asymmetry is exactly what made the old
    /// `trace_min_loads` occasionally exceed a legal pebble play's loads
    /// in the tightness harness: the pebble engine's MIN policy keys on
    /// next *reads*, so the trace simulator had to as well.
    #[test]
    fn pending_overwrite_makes_a_value_dead() {
        // cap 2: rA rB rC wB rB rA. At rC the resident set is {A, B} with
        // A next read at 5 and B next *written* at 3: killing B keeps A
        // resident and costs 3 loads total. Next-access-greedy would evict
        // A (5 > 3) and pay a 4th load for the rA at the end.
        let t = vec![
            Access::read(0),
            Access::read(1),
            Access::read(2),
            Access::write(1),
            Access::read(1),
            Access::read(0),
        ];
        assert_eq!(min_stats(2, &t).loads, 3);
    }

    #[test]
    fn belady_beats_lru_on_looping_pattern() {
        // Cyclic scan of 3 cells with capacity 2: LRU misses every access,
        // MIN hits more.
        let t = reads(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let lru = lru_stats(2, &t);
        let min = min_stats(2, &t);
        assert_eq!(lru.loads, 9);
        assert!(min.loads < lru.loads);
    }

    #[test]
    fn belady_with_infinite_capacity_is_cold_misses() {
        let t = reads(&[5, 3, 5, 9, 3, 5, 11]);
        let s = min_stats(100, &t);
        assert_eq!(s.loads, 4);
        assert_eq!(s.loads, cold_loads(&t));
    }

    #[test]
    fn belady_buffers_are_reusable() {
        let mut sim = BeladySim::new(2);
        let t1 = reads(&[0, 1, 2, 0, 1, 2]);
        let a = sim.run(&t1);
        let b = sim.run(&t1);
        assert_eq!(a, b, "same trace twice through one simulator");
        // A different (shorter, different cells) trace after the first.
        let t2 = vec![Access::write(7), Access::read(7)];
        let c = sim.run(&t2);
        assert_eq!(c.loads, 0);
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn packed_trace_matches_access_structs() {
        let t: Vec<Access> = vec![
            Access::write(3),
            Access::read(0),
            Access::read(3),
            Access::read(1),
            Access::read(0),
        ];
        let packed: Vec<u64> = t
            .iter()
            .map(|a| ((a.cell as u64) << 1) | a.write as u64)
            .collect();
        for cap in 1..4 {
            let via_structs = BeladySim::new(cap).run(&t);
            let via_packed = BeladySim::new(cap).run_packed(&packed);
            assert_eq!(via_structs, via_packed, "cap={cap}");
        }
    }

    #[test]
    fn cold_loads_skips_written_cells() {
        let t = vec![
            Access::write(1),
            Access::read(1),
            Access::read(2),
            Access::read(2),
        ];
        assert_eq!(cold_loads(&t), 1);
    }

    #[test]
    fn empty_trace() {
        assert_eq!(min_stats(4, &[]).accesses, 0);
        assert_eq!(lru_stats(4, &[]).accesses, 0);
        assert_eq!(cold_loads(&[]), 0);
    }

    /// Reference MIN implementation (ordered map, two materialized passes) —
    /// the original engine, kept as an executable specification. The
    /// eviction key of a value that is never read again before its next
    /// overwrite is `+∞` (the write-kill rule: a write miss costs nothing,
    /// so dead values are always the cheapest victims).
    fn min_stats_reference(capacity: usize, trace: &[Access]) -> IoStats {
        use std::collections::{BTreeSet, HashMap};
        const INF_POS: usize = usize::MAX;
        let mut next_use = vec![INF_POS; trace.len()];
        let mut last_seen: HashMap<usize, usize> = HashMap::new();
        for (t, a) in trace.iter().enumerate().rev() {
            if let Some(&n) = last_seen.get(&a.cell) {
                next_use[t] = n;
            }
            last_seen.insert(a.cell, t);
        }
        let mut stats = IoStats::default();
        let mut resident: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut resident_key: HashMap<usize, usize> = HashMap::new();
        let mut dirty: HashMap<usize, bool> = HashMap::new();
        for (t, a) in trace.iter().enumerate() {
            stats.accesses += 1;
            // Dead (key +∞) when never accessed again or next access is a
            // write — the overwrite re-materializes the value for free.
            let nu = match next_use[t] {
                INF_POS => INF_POS,
                n if trace[n].write => INF_POS,
                n => n,
            };
            if let Some(&key) = resident_key.get(&a.cell) {
                resident.remove(&(key, a.cell));
                resident.insert((nu, a.cell));
                resident_key.insert(a.cell, nu);
                if a.write {
                    dirty.insert(a.cell, true);
                }
                continue;
            }
            if !a.write {
                stats.loads += 1;
            }
            if resident.len() == capacity {
                let &(victim_key, victim) = resident.iter().next_back().expect("non-empty");
                resident.remove(&(victim_key, victim));
                resident_key.remove(&victim);
                if dirty.remove(&victim).unwrap_or(false) {
                    stats.writebacks += 1;
                }
            }
            resident.insert((nu, a.cell));
            resident_key.insert(a.cell, nu);
            dirty.insert(a.cell, a.write);
            stats.peak_resident = stats.peak_resident.max(resident.len());
        }
        stats.writebacks += resident_key
            .keys()
            .filter(|c| dirty.get(c).copied().unwrap_or(false))
            .count() as u64;
        stats
    }

    fn arb_trace() -> impl Strategy<Value = Vec<Access>> {
        proptest::collection::vec((0usize..12, proptest::bool::ANY), 1..200).prop_map(|v| {
            v.into_iter()
                .map(|(cell, write)| Access { cell, write })
                .collect()
        })
    }

    proptest! {
        /// MIN is optimal: never more loads than LRU.
        #[test]
        fn min_never_beaten_by_lru(t in arb_trace(), cap in 1usize..8) {
            prop_assert!(min_stats(cap, &t).loads <= lru_stats(cap, &t).loads);
        }

        /// Both policies are stack algorithms: loads monotone in capacity.
        #[test]
        fn loads_monotone_in_capacity(t in arb_trace(), cap in 1usize..8) {
            prop_assert!(lru_stats(cap + 1, &t).loads <= lru_stats(cap, &t).loads);
            prop_assert!(min_stats(cap + 1, &t).loads <= min_stats(cap, &t).loads);
        }

        /// Loads never drop below cold misses, and with huge capacity they
        /// equal cold misses.
        #[test]
        fn cold_misses_are_floor(t in arb_trace(), cap in 1usize..8) {
            let floor = cold_loads(&t);
            prop_assert!(lru_stats(cap, &t).loads >= floor);
            prop_assert!(min_stats(cap, &t).loads >= floor);
            prop_assert_eq!(min_stats(1000, &t).loads, floor);
            prop_assert_eq!(lru_stats(1000, &t).loads, floor);
        }

        /// Accesses are all counted and peak residency respects capacity.
        #[test]
        fn bookkeeping_invariants(t in arb_trace(), cap in 1usize..8) {
            let s = lru_stats(cap, &t);
            prop_assert_eq!(s.accesses, t.len() as u64);
            prop_assert!(s.peak_resident <= cap);
            let m = min_stats(cap, &t);
            prop_assert_eq!(m.accesses, t.len() as u64);
            prop_assert!(m.peak_resident <= cap);
        }

        /// The streaming MIN engine matches the ordered-map reference on
        /// loads and total residency (victim ties among dead elements may be
        /// broken differently, which legally reorders *when* a writeback
        /// happens but never how many there are in total).
        #[test]
        fn streaming_min_matches_reference(t in arb_trace(), cap in 1usize..8) {
            let fast = min_stats(cap, &t);
            let slow = min_stats_reference(cap, &t);
            prop_assert_eq!(fast.loads, slow.loads);
            prop_assert_eq!(fast.accesses, slow.accesses);
            prop_assert_eq!(fast.peak_resident, slow.peak_resident);
            prop_assert_eq!(fast.writebacks, slow.writebacks);
        }
    }
}
