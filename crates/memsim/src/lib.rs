//! Two-level memory simulator at element granularity.
//!
//! The paper's model (§2) has a small fast memory of size `S` and an
//! unbounded slow memory; the I/O cost of a schedule is the number of
//! transfers. This crate measures exactly that for concrete access traces:
//!
//! * [`LruSim`] — fully-associative LRU replacement, O(1) per access,
//!   streaming (no trace materialization needed),
//! * [`BeladySim`] — Belady's MIN (optimal offline replacement for a fixed
//!   schedule), two passes over a materialized trace,
//! * write semantics follow the red-white pebble game: a write *produces*
//!   the value in fast memory (no load on a write miss); evicting a dirty
//!   element counts a writeback.
//!
//! Measured `loads` of any schedule are an upper bound witness: lower bounds
//! derived by `iolb-core` must sit below them.

use std::collections::BTreeSet;
use std::collections::HashMap;

/// One memory access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Global element id.
    pub cell: usize,
    /// True for writes.
    pub write: bool,
}

impl Access {
    /// Read access.
    pub fn read(cell: usize) -> Access {
        Access { cell, write: false }
    }
    /// Write access.
    pub fn write(cell: usize) -> Access {
        Access { cell, write: true }
    }
}

/// I/O statistics of one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Loads: slow→fast transfers (read misses).
    pub loads: u64,
    /// Writebacks: dirty evictions plus the final dirty flush.
    pub writebacks: u64,
    /// Total accesses processed.
    pub accesses: u64,
    /// Peak number of resident elements.
    pub peak_resident: usize,
}

impl IoStats {
    /// Loads + writebacks.
    pub fn total(&self) -> u64 {
        self.loads + self.writebacks
    }
}

const NIL: u32 = u32::MAX;

/// Fully-associative LRU cache of `capacity` elements, O(1) per access.
///
/// Implemented as an intrusive doubly-linked list over a slab, with a
/// hash map from cell id to slab slot.
#[derive(Debug)]
pub struct LruSim {
    capacity: usize,
    map: HashMap<usize, u32>,
    // Slab of list nodes.
    cells: Vec<usize>,
    dirty: Vec<bool>,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    free: Vec<u32>,
    stats: IoStats,
}

impl LruSim {
    /// Creates a simulator with the given fast-memory capacity (elements).
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> LruSim {
        assert!(capacity > 0, "cache capacity must be positive");
        LruSim {
            capacity,
            map: HashMap::with_capacity(capacity * 2),
            cells: Vec::with_capacity(capacity + 1),
            dirty: Vec::with_capacity(capacity + 1),
            prev: Vec::with_capacity(capacity + 1),
            next: Vec::with_capacity(capacity + 1),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            stats: IoStats::default(),
        }
    }

    /// Processes one access.
    pub fn access(&mut self, a: Access) {
        self.stats.accesses += 1;
        if let Some(&slot) = self.map.get(&a.cell) {
            self.unlink(slot);
            self.push_front(slot);
            if a.write {
                self.dirty[slot as usize] = true;
            }
            return;
        }
        // Miss.
        if !a.write {
            self.stats.loads += 1;
        }
        if self.map.len() == self.capacity {
            self.evict_lru();
        }
        let slot = self.alloc(a.cell, a.write);
        self.push_front(slot);
        self.map.insert(a.cell, slot);
        self.stats.peak_resident = self.stats.peak_resident.max(self.map.len());
    }

    /// Processes a read.
    pub fn read(&mut self, cell: usize) {
        self.access(Access::read(cell));
    }

    /// Processes a write.
    pub fn write(&mut self, cell: usize) {
        self.access(Access::write(cell));
    }

    /// Runs a whole trace.
    pub fn run<'a>(&mut self, trace: impl IntoIterator<Item = &'a Access>) -> IoStats {
        for a in trace {
            self.access(*a);
        }
        self.stats
    }

    /// Statistics so far (without final flush).
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Flushes remaining dirty elements (counts writebacks) and returns the
    /// final statistics.
    pub fn finish(mut self) -> IoStats {
        let dirty_resident = self
            .map
            .values()
            .filter(|&&s| self.dirty[s as usize])
            .count() as u64;
        self.stats.writebacks += dirty_resident;
        self.stats
    }

    fn alloc(&mut self, cell: usize, dirty: bool) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.cells[slot as usize] = cell;
            self.dirty[slot as usize] = dirty;
            self.prev[slot as usize] = NIL;
            self.next[slot as usize] = NIL;
            slot
        } else {
            let slot = self.cells.len() as u32;
            self.cells.push(cell);
            self.dirty.push(dirty);
            self.prev.push(NIL);
            self.next.push(NIL);
            slot
        }
    }

    fn push_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        assert!(victim != NIL, "evict from empty cache");
        self.unlink(victim);
        let cell = self.cells[victim as usize];
        if self.dirty[victim as usize] {
            self.stats.writebacks += 1;
        }
        self.map.remove(&cell);
        self.free.push(victim);
    }
}

/// Belady's MIN: optimal replacement for a fixed trace.
///
/// Two passes: a backward pass computes each access's *next use position*,
/// then a forward pass keeps the resident set in a `BTreeSet` keyed by next
/// use and evicts the element used farthest in the future.
#[derive(Debug)]
pub struct BeladySim {
    capacity: usize,
}

const INF_POS: usize = usize::MAX;

impl BeladySim {
    /// Creates a MIN simulator with the given capacity.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> BeladySim {
        assert!(capacity > 0, "cache capacity must be positive");
        BeladySim { capacity }
    }

    /// Simulates the trace under optimal replacement.
    pub fn run(&self, trace: &[Access]) -> IoStats {
        // Backward pass: next_use[t] = next position accessing the same cell.
        let mut next_use = vec![INF_POS; trace.len()];
        let mut last_seen: HashMap<usize, usize> = HashMap::new();
        for (t, a) in trace.iter().enumerate().rev() {
            if let Some(&n) = last_seen.get(&a.cell) {
                next_use[t] = n;
            }
            last_seen.insert(a.cell, t);
        }

        let mut stats = IoStats::default();
        // Resident set: (next_use_position, cell); invariant: the stored key
        // of a resident cell is the position of its next access.
        let mut resident: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut resident_key: HashMap<usize, usize> = HashMap::new();
        let mut dirty: HashMap<usize, bool> = HashMap::new();
        for (t, a) in trace.iter().enumerate() {
            stats.accesses += 1;
            let nu = next_use[t];
            if let Some(&key) = resident_key.get(&a.cell) {
                // Hit: reposition by new next use.
                debug_assert_eq!(key, t, "resident key must equal current position");
                resident.remove(&(key, a.cell));
                resident.insert((nu, a.cell));
                resident_key.insert(a.cell, nu);
                if a.write {
                    dirty.insert(a.cell, true);
                }
                continue;
            }
            // Miss.
            if !a.write {
                stats.loads += 1;
            }
            if resident.len() == self.capacity {
                let &(victim_key, victim) = resident.iter().next_back().expect("non-empty");
                resident.remove(&(victim_key, victim));
                resident_key.remove(&victim);
                if dirty.remove(&victim).unwrap_or(false) {
                    stats.writebacks += 1;
                }
            }
            resident.insert((nu, a.cell));
            resident_key.insert(a.cell, nu);
            dirty.insert(a.cell, a.write);
            stats.peak_resident = stats.peak_resident.max(resident.len());
        }
        // Final flush of dirty residents.
        stats.writebacks += resident_key
            .keys()
            .filter(|c| dirty.get(c).copied().unwrap_or(false))
            .count() as u64;
        stats
    }
}

/// Convenience: LRU stats for a trace (with final dirty flush).
pub fn lru_stats(capacity: usize, trace: &[Access]) -> IoStats {
    let mut sim = LruSim::new(capacity);
    sim.run(trace);
    sim.finish()
}

/// Convenience: MIN (optimal) stats for a trace.
pub fn min_stats(capacity: usize, trace: &[Access]) -> IoStats {
    BeladySim::new(capacity).run(trace)
}

/// Number of distinct cells read before being written (cold loads — the
/// unavoidable input loads of any schedule).
pub fn cold_loads(trace: &[Access]) -> u64 {
    let mut seen_write: BTreeSet<usize> = BTreeSet::new();
    let mut counted: BTreeSet<usize> = BTreeSet::new();
    let mut loads = 0;
    for a in trace {
        if a.write {
            seen_write.insert(a.cell);
        } else if !seen_write.contains(&a.cell) && counted.insert(a.cell) {
            loads += 1;
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reads(cells: &[usize]) -> Vec<Access> {
        cells.iter().map(|&c| Access::read(c)).collect()
    }

    #[test]
    fn lru_basic_hits_and_misses() {
        let t = reads(&[0, 1, 0, 2, 0]);
        let s = lru_stats(2, &t);
        assert_eq!(s.loads, 3);
        assert_eq!(s.writebacks, 0);
        assert_eq!(s.accesses, 5);
        assert_eq!(s.peak_resident, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // capacity 2: a b c → evict a; then a misses again.
        let t = reads(&[0, 1, 2, 0]);
        assert_eq!(lru_stats(2, &t).loads, 4);
        // capacity 3 keeps everything.
        assert_eq!(lru_stats(3, &t).loads, 3);
    }

    #[test]
    fn write_miss_costs_no_load() {
        let t = vec![Access::write(0), Access::read(0)];
        let s = lru_stats(4, &t);
        assert_eq!(s.loads, 0);
        // Final flush writes the dirty cell back once.
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        // capacity 1: write 0, read 1 → 0 evicted dirty.
        let t = vec![Access::write(0), Access::read(1)];
        let s = lru_stats(1, &t);
        assert_eq!(s.loads, 1);
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn belady_beats_lru_on_looping_pattern() {
        // Cyclic scan of 3 cells with capacity 2: LRU misses every access,
        // MIN hits more.
        let t = reads(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let lru = lru_stats(2, &t);
        let min = min_stats(2, &t);
        assert_eq!(lru.loads, 9);
        assert!(min.loads < lru.loads);
    }

    #[test]
    fn belady_with_infinite_capacity_is_cold_misses() {
        let t = reads(&[5, 3, 5, 9, 3, 5, 11]);
        let s = min_stats(100, &t);
        assert_eq!(s.loads, 4);
        assert_eq!(s.loads, cold_loads(&t));
    }

    #[test]
    fn cold_loads_skips_written_cells() {
        let t = vec![
            Access::write(1),
            Access::read(1),
            Access::read(2),
            Access::read(2),
        ];
        assert_eq!(cold_loads(&t), 1);
    }

    fn arb_trace() -> impl Strategy<Value = Vec<Access>> {
        proptest::collection::vec((0usize..12, proptest::bool::ANY), 1..200)
            .prop_map(|v| v.into_iter().map(|(cell, write)| Access { cell, write }).collect())
    }

    proptest! {
        /// MIN is optimal: never more loads than LRU.
        #[test]
        fn min_never_beaten_by_lru(t in arb_trace(), cap in 1usize..8) {
            prop_assert!(min_stats(cap, &t).loads <= lru_stats(cap, &t).loads);
        }

        /// Both policies are stack algorithms: loads monotone in capacity.
        #[test]
        fn loads_monotone_in_capacity(t in arb_trace(), cap in 1usize..8) {
            prop_assert!(lru_stats(cap + 1, &t).loads <= lru_stats(cap, &t).loads);
            prop_assert!(min_stats(cap + 1, &t).loads <= min_stats(cap, &t).loads);
        }

        /// Loads never drop below cold misses, and with huge capacity they
        /// equal cold misses.
        #[test]
        fn cold_misses_are_floor(t in arb_trace(), cap in 1usize..8) {
            let floor = cold_loads(&t);
            prop_assert!(lru_stats(cap, &t).loads >= floor);
            prop_assert!(min_stats(cap, &t).loads >= floor);
            prop_assert_eq!(min_stats(1000, &t).loads, floor);
            prop_assert_eq!(lru_stats(1000, &t).loads, floor);
        }

        /// Accesses are all counted and peak residency respects capacity.
        #[test]
        fn bookkeeping_invariants(t in arb_trace(), cap in 1usize..8) {
            let s = lru_stats(cap, &t);
            prop_assert_eq!(s.accesses, t.len() as u64);
            prop_assert!(s.peak_resident <= cap);
            let m = min_stats(cap, &t);
            prop_assert_eq!(m.accesses, t.len() as u64);
            prop_assert!(m.peak_resident <= cap);
        }
    }
}
