//! `iolbd` — the analysis daemon binary (a thin wrapper around
//! [`iolbd::run`]).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iolbd::run(&args)
}
