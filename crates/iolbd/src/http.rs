//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for
//! the daemon's JSON API (request line + headers + `Content-Length`
//! bodies, keep-alive, nothing else). Hand-rolled because the build
//! environment is vendored-deps-only; the daemon's clients are the
//! benchmark harness and local tooling, not the open internet.

use std::io::{Read, Write};
use std::time::Instant;

/// Upper bound on a request head + body the daemon will buffer.
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (`/analyze`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// What one read attempt on a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly before sending anything.
    Closed,
    /// No bytes arrived within the read timeout — the connection is idle
    /// (keep-alive between requests); requeue it and try again later.
    Idle,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Why [`read_request`] gave up on a connection. The two classes map to
/// different responses: a client that was *too slow* gets `408`, a client
/// that sent *garbage* gets `400`.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadError {
    /// The total wall deadline expired (or the per-read stall backstop
    /// tripped) with a request underway.
    Timeout(String),
    /// Malformed framing, oversized payloads, truncation mid-request, or
    /// a transport error.
    Malformed(String),
}

impl ReadError {
    /// The human-readable diagnostic.
    pub fn message(&self) -> &str {
        match self {
            ReadError::Timeout(m) | ReadError::Malformed(m) => m,
        }
    }
}

fn malformed<T>(msg: impl Into<String>) -> Result<T, ReadError> {
    Err(ReadError::Malformed(msg.into()))
}

/// Reads one request from the stream. The caller arms a short read
/// timeout; an idle connection surfaces as [`ReadOutcome::Idle`] after
/// one silent timeout, while a connection that has *started* a request
/// must finish it within `deadline_ms` of its first byte (0 = no wall
/// deadline) *and* without stalling more than a bounded number of
/// consecutive read-timeout windows. The wall deadline is what closes
/// the slowloris hole: a client trickling one byte per timeout window
/// never stalls, but cannot trickle forever.
///
/// # Errors
/// [`ReadError::Timeout`] when the client was too slow (answer `408`);
/// [`ReadError::Malformed`] on framing/transport problems (answer `400`).
pub fn read_request<S: Read>(stream: &mut S, deadline_ms: u64) -> Result<ReadOutcome, ReadError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut stalls = 0usize;
    // The wall clock starts at the request's first byte, so idle
    // keep-alive connections never tick against the deadline.
    let mut started: Option<Instant> = None;
    let expired = |started: &Option<Instant>| {
        deadline_ms > 0 && started.is_some_and(|t| t.elapsed().as_millis() as u64 > deadline_ms)
    };
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_BODY {
            return malformed("request head too large");
        }
        if expired(&started) {
            return Err(ReadError::Timeout(format!(
                "request exceeded --request-deadline-ms={deadline_ms} reading the head"
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(ReadOutcome::Closed);
                }
                return malformed("connection closed mid-request");
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                started.get_or_insert_with(Instant::now);
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                if buf.is_empty() {
                    return Ok(ReadOutcome::Idle);
                }
                stalls += 1;
                if stalls > 40 {
                    return Err(ReadError::Timeout("timed out mid-request".to_string()));
                }
            }
            Err(e) => return malformed(format!("read: {e}")),
        }
    };

    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return malformed("request head is not UTF-8"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().map_or("", |l| l);
    let mut parts = request_line.split_whitespace();
    let Some(method) = parts.next().map(str::to_string) else {
        return malformed("missing method");
    };
    let Some(target) = parts.next() else {
        return malformed("missing request target");
    };
    let Some(version) = parts.next() else {
        return malformed("missing HTTP version");
    };
    if !version.starts_with("HTTP/1.") {
        return malformed(format!("unsupported version {version}"));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = match value.parse() {
                        Ok(n) => n,
                        Err(_) => return malformed(format!("bad Content-Length `{value}`")),
                    };
                }
                "connection" => match value.to_ascii_lowercase().as_str() {
                    "close" => keep_alive = false,
                    "keep-alive" => keep_alive = true,
                    _ => {}
                },
                _ => {}
            }
        }
    }
    if content_length > MAX_BODY {
        return malformed(format!("body of {content_length} bytes exceeds limit"));
    }

    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    let mut stalls = 0usize;
    while body.len() < content_length {
        if expired(&started) {
            return Err(ReadError::Timeout(format!(
                "request exceeded --request-deadline-ms={deadline_ms} reading the body"
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return malformed("connection closed mid-body"),
            Ok(n) => {
                body.extend_from_slice(&chunk[..n]);
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > 40 {
                    return Err(ReadError::Timeout("timed out mid-body".to_string()));
                }
            }
            Err(e) => return malformed(format!("read body: {e}")),
        }
    }
    body.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits and percent-decodes a query string.
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Percent-decoding with `+` as space. Invalid escapes pass through
/// verbatim (the option parser will reject them with a real diagnostic).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        c @ b'0'..=b'9' => Some(c - b'0'),
        c @ b'a'..=b'f' => Some(c - b'a' + 10),
        c @ b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes one response (the wire bytes, ready to write). All daemon
/// payloads are JSON.
pub fn render_response(
    status: u16,
    extra_headers: &[(String, String)],
    body: &str,
    keep_alive: bool,
) -> String {
    let mut out = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    out.push_str("Content-Type: application/json\r\n");
    out.push_str(&format!("Content-Length: {}\r\n", body.len()));
    for (name, value) in extra_headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    out.push_str("\r\n");
    out.push_str(body);
    out
}

/// Writes a rendered response to the stream.
///
/// # Errors
/// The transport error, when the peer is gone.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    extra_headers: &[(String, String)],
    body: &str,
    keep_alive: bool,
) -> Result<(), String> {
    stream
        .write_all(render_response(status, extra_headers, body, keep_alive).as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_decodes() {
        let q = parse_query("params=M%3D8,N=16&stmt=SU&derive-only&x=a+b");
        assert_eq!(
            q,
            vec![
                ("params".to_string(), "M=8,N=16".to_string()),
                ("stmt".to_string(), "SU".to_string()),
                ("derive-only".to_string(), String::new()),
                ("x".to_string(), "a b".to_string()),
            ]
        );
    }

    #[test]
    fn bad_escapes_pass_through() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%41"), "A");
    }

    #[test]
    fn response_framing() {
        let r = render_response(
            200,
            &[("X-Iolb-Cache".to_string(), "hit".to_string())],
            "{}",
            true,
        );
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 2\r\n"));
        assert!(r.contains("X-Iolb-Cache: hit\r\n"));
        assert!(r.contains("Connection: keep-alive\r\n"));
        assert!(r.ends_with("\r\n\r\n{}"));
    }
}
