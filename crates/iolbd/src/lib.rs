//! `iolbd` — the long-lived analysis daemon in front of the
//! [`iolb_service`] pipeline.
//!
//! A minimal hand-rolled HTTP/1.1 server over `std::net::TcpListener`
//! (the build is vendored-deps-only): an accept loop feeds a *bounded*
//! queue — a full queue answers `503` immediately, which is the
//! backpressure contract — and a dispatcher drains the queue in batches
//! onto the shared rayon pool, one request per connection per cycle.
//! Responses reuse the CLI's report schemas verbatim; the daemon's own
//! envelope is `hourglass-iolb/serve/v1`.
//!
//! Per-request budgets and deadlines arrive as query parameters (the
//! same switchboard as the CLI flags) and surface as typed
//! [`AnalysisError`] classes mapped onto HTTP status codes:
//!
//! | class            | HTTP |
//! |------------------|------|
//! | parse            | 400  |
//! | refused          | 422  |
//! | budget exceeded  | 413  |
//! | deadline         | 408  |
//! | cancelled        | 499  |
//! | internal         | 500  |
//! | (queue full)     | 503  |

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod http;

use http::{read_request, write_response, ReadOutcome, Request};
use iolb_bench::sweep::{json_str, sweep_report_json_with};
use iolb_bench::tightness::{tightness_report_json, TightnessReport};
use iolb_core::govern::AnalysisError;
use iolb_service::{AnalysisOptions, AnalysisOutcome, AnalyzeRequest, Pipeline};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Daemon usage text.
pub const USAGE: &str = "\
iolbd — analysis daemon serving the iolb pipeline over HTTP

USAGE:
    iolbd [OPTIONS]

OPTIONS:
    --addr HOST:PORT      bind address (default 127.0.0.1:0; the chosen
                          port is printed as `listening on …`)
    --queue N             accept-queue capacity; a full queue answers 503
                          immediately (default 64)
    --batch N             max connections served per dispatch cycle on
                          the rayon pool (default 16)
    --cache-cap N         report-cache entry bound; least-recently-used
                          reports are evicted past it (default 512,
                          0 = unbounded)
    -h, --help            this text

Any analysis option the CLI accepts as a flag is accepted here (without
the leading `--` it is the same key a request may pass in its query
string) and becomes the per-request default: --s-grid, --engines,
--no-tightness, --derive-only, --no-degrade, --max-instances,
--max-cdag-nodes, --max-cdag-edges, --max-trace, --max-arena-bytes,
--max-work, --deadline-ms.

ENDPOINTS:
    POST /analyze         body = typed JSON request ({\"source\": …,
                          \"options\": {…}, \"budgets\": {…},
                          \"engines\": …}) when it starts with `{`;
                          otherwise body = raw kernel text with options
                          in the query string (deprecated alias — same
                          bytes out either way)
    GET  /healthz         liveness probe
    GET  /stats           request counters + cache hit/miss/eviction
                          counters
    POST /shutdown        graceful stop
";

/// Parsed daemon options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address.
    pub addr: String,
    /// Accept-queue capacity (backpressure bound).
    pub queue: usize,
    /// Max connections per dispatch cycle.
    pub batch: usize,
    /// Report-cache entry bound (0 = unbounded).
    pub cache_cap: usize,
    /// Per-request analysis defaults (budgets, grid, flags).
    pub defaults: AnalysisOptions,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            queue: 64,
            batch: 16,
            cache_cap: iolb_service::DEFAULT_REPORT_CAPACITY,
            defaults: AnalysisOptions::default(),
        }
    }
}

/// Keys that are presence-only flags on the command line (everything
/// else consumes a value argument).
const FLAG_KEYS: &[&str] = &["no-tightness", "derive-only", "no-degrade"];

/// Parses daemon command-line arguments.
///
/// # Errors
/// Usage/diagnostic text to print.
pub fn parse_server_args(args: &[String]) -> Result<ServerOptions, String> {
    let mut o = ServerOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                o.addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--queue" => {
                o.queue = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|_| "bad --queue value".to_string())?;
                if o.queue == 0 {
                    return Err("--queue must be at least 1".to_string());
                }
            }
            "--batch" => {
                o.batch = it
                    .next()
                    .ok_or("--batch needs a value")?
                    .parse()
                    .map_err(|_| "bad --batch value".to_string())?;
                if o.batch == 0 {
                    return Err("--batch must be at least 1".to_string());
                }
            }
            "--cache-cap" => {
                o.cache_cap = it
                    .next()
                    .ok_or("--cache-cap needs a value")?
                    .parse()
                    .map_err(|_| "bad --cache-cap value".to_string())?;
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            flag if flag.starts_with("--") => {
                let key = &flag[2..];
                if key == "inject" {
                    return Err("--inject is per-request only (query parameter)".to_string());
                }
                let value = if FLAG_KEYS.contains(&key) {
                    String::new()
                } else {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))?
                        .clone()
                };
                o.defaults
                    .set(key, &value)
                    .map_err(|e| format!("{e}\n\n{USAGE}"))?;
            }
            other => return Err(format!("unexpected argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(o)
}

/// The daemon entry point (argument vector without the binary name).
pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_server_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// Shared daemon state: the pipeline (with its cache) plus counters.
pub struct ServerState {
    /// The analysis service core.
    pub pipeline: Pipeline,
    /// Per-request analysis defaults.
    pub defaults: AnalysisOptions,
    /// Bound address (used by the shutdown self-connect wake).
    pub addr: SocketAddr,
    /// Graceful-stop flag.
    pub shutdown: AtomicBool,
    /// Requests served (any endpoint, any status).
    pub requests: AtomicU64,
    /// `/analyze` requests served.
    pub analyzed: AtomicU64,
    /// Connections refused with 503 because the accept queue was full.
    pub overloaded: AtomicU64,
}

/// Binds, prints `listening on ADDR`, and serves until `/shutdown`.
///
/// # Errors
/// Bind/socket setup failures (runtime per-connection errors are
/// answered or dropped, never fatal).
pub fn serve(opts: &ServerOptions) -> Result<(), String> {
    let listener = TcpListener::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    // Best-effort banner: a supervising process may close our stdout
    // after reading the address, and a daemon must not die over it.
    use std::io::Write as _;
    let mut out = std::io::stdout();
    let _ = writeln!(out, "listening on {addr}");
    let _ = out.flush();
    serve_listener(listener, opts)
}

/// [`serve`] on a listener the caller already bound (tests bind their
/// own port-0 listener to learn the address before serving).
///
/// # Errors
/// Socket setup failures.
pub fn serve_listener(listener: TcpListener, opts: &ServerOptions) -> Result<(), String> {
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let state = Arc::new(ServerState {
        pipeline: Pipeline::with_report_capacity(opts.cache_cap),
        defaults: opts.defaults.clone(),
        addr,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        analyzed: AtomicU64::new(0),
        overloaded: AtomicU64::new(0),
    });

    let (tx, rx) = sync_channel::<TcpStream>(opts.queue);
    let dispatcher = {
        let state = Arc::clone(&state);
        let batch = opts.batch;
        std::thread::spawn(move || dispatch(&state, &rx, batch))
    };

    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if let Err(TrySendError::Full(mut s)) = tx.try_send(stream) {
            // Backpressure: the bounded queue is the admission control of
            // the transport layer — refuse immediately, don't buffer.
            state.overloaded.fetch_add(1, Ordering::Relaxed);
            let body = error_body_raw("overloaded", 0, "accept queue full, retry later");
            let _ = write_response(
                &mut s,
                503,
                &[("Retry-After".to_string(), "1".to_string())],
                &body,
                false,
            );
        }
    }
    drop(tx);
    dispatcher
        .join()
        .map_err(|_| "dispatcher thread panicked".to_string())?;
    // Best-effort, as with the startup banner: stdout may be gone.
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "shutdown complete");
    Ok(())
}

/// How long one read attempt on a connection blocks per cycle.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// The dispatcher: drains accepted connections into batches and serves
/// each batch concurrently on the rayon pool (one request per connection
/// per cycle; keep-alive connections are requeued).
fn dispatch(state: &ServerState, rx: &Receiver<TcpStream>, batch: usize) {
    let mut pending: VecDeque<TcpStream> = VecDeque::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if pending.is_empty() {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(s) => pending.push_back(s),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        while pending.len() < batch {
            match rx.try_recv() {
                Ok(s) => pending.push_back(s),
                Err(_) => break,
            }
        }
        let take = pending.len().min(batch);
        let cycle: Vec<TcpStream> = pending.drain(..take).collect();
        let keep: Vec<Option<TcpStream>> = cycle
            .into_par_iter()
            .map(|s| serve_connection(state, s))
            .collect();
        pending.extend(keep.into_iter().flatten());
    }
}

/// Serves at most one request on the connection; returns it for
/// requeueing when it should stay open.
fn serve_connection(state: &ServerState, mut stream: TcpStream) -> Option<TcpStream> {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return None;
    }
    match read_request(&mut stream) {
        Ok(ReadOutcome::Idle) => {
            // Idle keep-alive connection between requests; drop it once
            // the daemon is stopping.
            if state.shutdown.load(Ordering::SeqCst) {
                None
            } else {
                Some(stream)
            }
        }
        Ok(ReadOutcome::Closed) => None,
        Ok(ReadOutcome::Request(req)) => {
            state.requests.fetch_add(1, Ordering::Relaxed);
            let (status, headers, body) = handle(state, &req);
            let ok = write_response(&mut stream, status, &headers, &body, req.keep_alive).is_ok();
            if ok && req.keep_alive {
                Some(stream)
            } else {
                None
            }
        }
        Err(msg) => {
            let body = error_body_raw("parse", 2, &format!("bad request: {msg}"));
            let _ = write_response(&mut stream, 400, &[], &body, false);
            None
        }
    }
}

type HandlerResult = (u16, Vec<(String, String)>, String);

/// Routes one request.
fn handle(state: &ServerState, req: &Request) -> HandlerResult {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/analyze") => handle_analyze(state, req),
        ("GET", "/healthz") => (200, Vec::new(), "{\"ok\": true}".to_string()),
        ("GET", "/stats") => (200, Vec::new(), stats_body(state)),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.addr);
            (
                200,
                Vec::new(),
                "{\"ok\": true, \"shutting_down\": true}".to_string(),
            )
        }
        (_, "/analyze" | "/shutdown") => (
            405,
            Vec::new(),
            error_body_raw("refused", 3, "method not allowed (use POST)"),
        ),
        (_, "/healthz" | "/stats") => (
            405,
            Vec::new(),
            error_body_raw("refused", 3, "method not allowed (use GET)"),
        ),
        (_, path) => (
            404,
            Vec::new(),
            error_body_raw("refused", 3, &format!("no such endpoint {path}")),
        ),
    }
}

/// `POST /analyze`. Two request forms share one option switchboard:
///
/// * **typed JSON body** (the body's first non-whitespace byte is `{`) —
///   an [`AnalyzeRequest`] carrying the kernel source plus `options` /
///   `budgets` / `engines` members (`.iolb` sources cannot start with
///   `{`, so the sniff is unambiguous);
/// * **raw kernel body** with options in the query string — the original
///   interface, kept as a deprecated alias.
///
/// Option precedence: daemon defaults, then query parameters, then body
/// members — later wins. Both forms resolve to the same
/// `(source, options)` pair, so a given request produces byte-identical
/// response bodies either way (the golden-exchange test pins this).
fn handle_analyze(state: &ServerState, req: &Request) -> HandlerResult {
    state.analyzed.fetch_add(1, Ordering::Relaxed);
    let mut opts = state.defaults.clone();
    for (key, value) in &req.query {
        if let Err(e) = opts.set(key, value) {
            return (
                400,
                Vec::new(),
                error_body_raw("parse", 2, &format!("bad query option: {e}")),
            );
        }
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            return (
                400,
                Vec::new(),
                error_body_raw("parse", 2, "kernel body is not UTF-8"),
            );
        }
    };
    let source;
    let src = if body.trim_start().starts_with('{') {
        let parsed = match AnalyzeRequest::parse(body) {
            Ok(r) => r,
            Err(e) => {
                return (
                    400,
                    Vec::new(),
                    error_body_raw("parse", 2, &format!("bad request body: {e}")),
                );
            }
        };
        for (key, value) in &parsed.sets {
            if let Err(e) = opts.set(key, value) {
                return (
                    400,
                    Vec::new(),
                    error_body_raw("parse", 2, &format!("bad body option: {e}")),
                );
            }
        }
        source = parsed.source;
        source.as_str()
    } else {
        body
    };
    match state.pipeline.analyze(src, &opts) {
        Ok(answer) => {
            let cache_header = (
                "X-Iolb-Cache".to_string(),
                if answer.cached { "hit" } else { "miss" }.to_string(),
            );
            (200, vec![cache_header], outcome_body(&answer.outcome))
        }
        Err(e) => (status_for(&e), Vec::new(), error_body(&e)),
    }
}

/// HTTP status for each [`AnalysisError`] class.
pub fn status_for(e: &AnalysisError) -> u16 {
    match e {
        AnalysisError::Parse(_) => 400,
        AnalysisError::Refused(_) => 422,
        AnalysisError::BudgetExceeded { .. } => 413,
        AnalysisError::Deadline { .. } => 408,
        AnalysisError::Cancelled => 499,
        AnalysisError::Internal(_) => 500,
    }
}

/// JSON error envelope for a typed analysis error.
pub fn error_body(e: &AnalysisError) -> String {
    error_body_raw(e.class_name(), e.exit_code(), &e.to_string())
}

fn error_body_raw(class: &str, exit_class: u8, message: &str) -> String {
    format!(
        "{{\n  \"schema\": \"hourglass-iolb/serve/v1\",\n  \"error\": {{\"class\": {}, \"exit_class\": {exit_class}, \"message\": {}}}\n}}\n",
        json_str(class),
        json_str(message)
    )
}

/// `/stats` body: request counters plus both cache layers' counters
/// (including the report layer's LRU evictions and its configured cap).
fn stats_body(state: &ServerState) -> String {
    let cache = state.pipeline.cache().stats();
    format!(
        "{{\n  \"schema\": \"hourglass-iolb/serve-stats/v2\",\n  \"requests\": {},\n  \"analyzed\": {},\n  \"overloaded\": {},\n  \"cache\": {{\n    \"parse\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n    \"report\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}\n  }},\n  \"report_entries\": {},\n  \"report_capacity\": {}\n}}\n",
        state.requests.load(Ordering::Relaxed),
        state.analyzed.load(Ordering::Relaxed),
        state.overloaded.load(Ordering::Relaxed),
        cache.parse.hits,
        cache.parse.misses,
        cache.parse.evictions,
        cache.report.hits,
        cache.report.misses,
        cache.report.evictions,
        state.pipeline.cache().report_entries(),
        state.pipeline.cache().report_capacity(),
    )
}

/// Indents every non-first line of an embedded JSON document so the
/// envelope stays readable.
fn embed(doc: &str, indent: &str) -> String {
    doc.trim_end().replace('\n', &format!("\n{indent}"))
}

/// The success envelope: outcome summary + the CLI's own report schemas
/// embedded verbatim (volatile meta redacted, so a given kernel ×
/// options always serializes to identical bytes — cached or not).
pub fn outcome_body(o: &AnalysisOutcome) -> String {
    let params: Vec<String> = o
        .params
        .iter()
        .map(|(n, v)| format!("{}: {v}", json_str(n)))
        .collect();
    let classical = match &o.classical {
        Some(c) => format!(
            "{{\"sigma\": {}, \"m\": {}, \"expr\": {}}}",
            json_str(&c.sigma),
            json_str(&c.m),
            json_str(&c.expr)
        ),
        None => "null".to_string(),
    };
    let split = match &o.split {
        Some(s) => format!(
            "{{\"var\": {}, \"expr\": {}}}",
            json_str(&s.var),
            json_str(&s.expr)
        ),
        None => "null".to_string(),
    };
    let hourglass = match &o.hourglass {
        Some(h) => format!(
            "{{\"chains\": {}, \"w_min\": {}, \"w_max\": {}, \"main_tool\": {}}}",
            h.chains,
            json_str(&h.w_min),
            json_str(&h.w_max),
            json_str(&h.main_tool)
        ),
        None => "null".to_string(),
    };
    let degrade = match &o.degrade {
        Some(d) => format!(
            "{{\"work_needed\": {}, \"max_work\": {}, \"coarse_points\": {}}}",
            d.work_needed, d.max_work, d.coarse_points
        ),
        None => "null".to_string(),
    };
    let sweep = match &o.sweep {
        Some(r) => embed(&sweep_report_json_with(r, true), "  "),
        None => "null".to_string(),
    };
    let tightness = match &o.tightness {
        Some(k) => {
            let report = TightnessReport {
                kernels: vec![k.clone()],
                degradation: Vec::new(),
                failures: Vec::new(),
                total_wall_ms: 0.0,
                threads: 0,
            };
            embed(&tightness_report_json(&report, true), "  ")
        }
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": \"hourglass-iolb/serve/v1\",\n  \"kernel\": {},\n  \"stmt\": {},\n  \"params\": {{{}}},\n  \"certified_instances\": {},\n  \"degradation\": {},\n  \"sound\": {},\n  \"classical\": {classical},\n  \"split\": {split},\n  \"hourglass\": {hourglass},\n  \"degrade\": {degrade},\n  \"sweep\": {sweep},\n  \"tightness\": {tightness}\n}}\n",
        json_str(&o.name),
        json_str(&o.stmt),
        params.join(", "),
        o.certified_instances,
        json_str(o.degradation.as_str()),
        o.sound,
    )
}
