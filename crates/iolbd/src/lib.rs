//! `iolbd` — the long-lived analysis daemon in front of the
//! [`iolb_service`] pipeline.
//!
//! A minimal hand-rolled HTTP/1.1 server over `std::net::TcpListener`
//! (the build is vendored-deps-only): an accept loop feeds a *bounded*
//! queue — a full queue answers `503` immediately, which is the
//! backpressure contract — and a dispatcher drains the queue in batches
//! onto the shared rayon pool, one request per connection per cycle.
//! Responses reuse the CLI's report schemas verbatim; the daemon's own
//! envelope is `hourglass-iolb/serve/v1`.
//!
//! Per-request budgets and deadlines arrive as query parameters (the
//! same switchboard as the CLI flags) and surface as typed
//! [`AnalysisError`] classes mapped onto HTTP status codes:
//!
//! | class            | HTTP |
//! |------------------|------|
//! | parse            | 400  |
//! | refused          | 422  |
//! | budget exceeded  | 413  |
//! | deadline         | 408  |
//! | cancelled        | 499  |
//! | internal         | 500  |
//! | (queue full)     | 503  |

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod http;

use http::{read_request, write_response, ReadError, ReadOutcome, Request};
use iolb_bench::sweep::json_str;
use iolb_core::govern::AnalysisError;
use iolb_service::{AnalysisOptions, AnalyzeRequest, Pipeline, ReportStore};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

// Re-exported: the serve/v1 success envelope moved into the service crate
// (the persistent store works on rendered bodies), but it remains part of
// this crate's public surface.
pub use iolb_service::{embed, outcome_body};

/// Daemon usage text.
pub const USAGE: &str = "\
iolbd — analysis daemon serving the iolb pipeline over HTTP

USAGE:
    iolbd [OPTIONS]

OPTIONS:
    --addr HOST:PORT      bind address (default 127.0.0.1:0; the chosen
                          port is printed as `listening on …`)
    --queue N             accept-queue capacity; a full queue answers 503
                          immediately (default 64)
    --batch N             max connections served per dispatch cycle on
                          the rayon pool (default 16)
    --cache-cap N         report-cache entry bound; least-recently-used
                          reports are evicted past it (default 512,
                          0 = unbounded)
    --store DIR           persistent report store: finished reports are
                          journaled to DIR and served byte-identical
                          after a restart (default: no persistence)
    --drain-deadline-ms N graceful-shutdown budget: queued and in-flight
                          requests get up to N ms to finish before the
                          remainder is dropped (default 5000)
    --request-deadline-ms N
                          total wall deadline per request read; a client
                          that cannot deliver its request within N ms is
                          answered 408 (default 10000, 0 = off)
    -h, --help            this text

Any analysis option the CLI accepts as a flag is accepted here (without
the leading `--` it is the same key a request may pass in its query
string) and becomes the per-request default: --s-grid, --engines,
--no-tightness, --derive-only, --no-degrade, --curve-strategy,
--max-instances, --max-cdag-nodes, --max-cdag-edges, --max-trace,
--max-arena-bytes, --max-work, --deadline-ms.

ENDPOINTS:
    POST /analyze         body = typed JSON request ({\"source\": …,
                          \"options\": {…}, \"budgets\": {…},
                          \"engines\": …}) when it starts with `{`;
                          otherwise body = raw kernel text with options
                          in the query string (deprecated alias — same
                          bytes out either way)
    GET  /healthz         liveness probe
    GET  /stats           request counters, cache hit/miss/eviction
                          counters, queue depth, persistent-store and
                          recovery counters (serve-stats/v3)
    POST /shutdown        graceful drain: stop accepting, finish queued +
                          in-flight requests under --drain-deadline-ms,
                          flush the store journal, exit (SIGTERM does the
                          same)
";

/// Parsed daemon options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address.
    pub addr: String,
    /// Accept-queue capacity (backpressure bound).
    pub queue: usize,
    /// Max connections per dispatch cycle.
    pub batch: usize,
    /// Report-cache entry bound (0 = unbounded).
    pub cache_cap: usize,
    /// Persistent report store directory (`None` = no persistence).
    pub store: Option<String>,
    /// Graceful-shutdown budget for queued + in-flight requests (ms).
    pub drain_deadline_ms: u64,
    /// Total wall deadline for reading one request (ms, 0 = off).
    pub request_deadline_ms: u64,
    /// Per-request analysis defaults (budgets, grid, flags).
    pub defaults: AnalysisOptions,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            queue: 64,
            batch: 16,
            cache_cap: iolb_service::DEFAULT_REPORT_CAPACITY,
            store: None,
            drain_deadline_ms: 5000,
            request_deadline_ms: 10_000,
            defaults: AnalysisOptions::default(),
        }
    }
}

/// Keys that are presence-only flags on the command line (everything
/// else consumes a value argument).
const FLAG_KEYS: &[&str] = &["no-tightness", "derive-only", "no-degrade"];

/// Parses daemon command-line arguments.
///
/// # Errors
/// Usage/diagnostic text to print.
pub fn parse_server_args(args: &[String]) -> Result<ServerOptions, String> {
    let mut o = ServerOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                o.addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--queue" => {
                o.queue = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|_| "bad --queue value".to_string())?;
                if o.queue == 0 {
                    return Err("--queue must be at least 1".to_string());
                }
            }
            "--batch" => {
                o.batch = it
                    .next()
                    .ok_or("--batch needs a value")?
                    .parse()
                    .map_err(|_| "bad --batch value".to_string())?;
                if o.batch == 0 {
                    return Err("--batch must be at least 1".to_string());
                }
            }
            "--cache-cap" => {
                o.cache_cap = it
                    .next()
                    .ok_or("--cache-cap needs a value")?
                    .parse()
                    .map_err(|_| "bad --cache-cap value".to_string())?;
            }
            "--store" => {
                o.store = Some(it.next().ok_or("--store needs a directory")?.clone());
            }
            "--drain-deadline-ms" => {
                o.drain_deadline_ms = it
                    .next()
                    .ok_or("--drain-deadline-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --drain-deadline-ms value".to_string())?;
            }
            "--request-deadline-ms" => {
                o.request_deadline_ms = it
                    .next()
                    .ok_or("--request-deadline-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --request-deadline-ms value".to_string())?;
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            flag if flag.starts_with("--") => {
                let key = &flag[2..];
                if key == "inject" {
                    return Err("--inject is per-request only (query parameter)".to_string());
                }
                let value = if FLAG_KEYS.contains(&key) {
                    String::new()
                } else {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))?
                        .clone()
                };
                o.defaults
                    .set(key, &value)
                    .map_err(|e| format!("{e}\n\n{USAGE}"))?;
            }
            other => return Err(format!("unexpected argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(o)
}

/// The daemon entry point (argument vector without the binary name).
pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_server_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// Shared daemon state: the pipeline (with its cache and optional store)
/// plus counters.
pub struct ServerState {
    /// The analysis service core.
    pub pipeline: Pipeline,
    /// Per-request analysis defaults.
    pub defaults: AnalysisOptions,
    /// Bound address (used by the shutdown self-connect wake).
    pub addr: SocketAddr,
    /// Graceful-stop flag: once set, the accept loop stops and the
    /// dispatcher drains under the drain deadline.
    pub shutdown: AtomicBool,
    /// Requests served (any endpoint, any status).
    pub requests: AtomicU64,
    /// `/analyze` requests served.
    pub analyzed: AtomicU64,
    /// Connections refused with 503 because the accept queue was full.
    pub overloaded: AtomicU64,
    /// Connections currently sitting in the accept queue.
    pub queued: AtomicU64,
    /// When this server started (drain-rate estimation for Retry-After).
    pub started: Instant,
    /// Graceful-shutdown budget (ms).
    pub drain_deadline_ms: u64,
    /// Per-request read wall deadline (ms, 0 = off).
    pub request_deadline_ms: u64,
}

/// Binds, prints `listening on ADDR`, and serves until `/shutdown`.
///
/// # Errors
/// Bind/socket setup failures (runtime per-connection errors are
/// answered or dropped, never fatal).
pub fn serve(opts: &ServerOptions) -> Result<(), String> {
    let listener = TcpListener::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    // Best-effort banner: a supervising process may close our stdout
    // after reading the address, and a daemon must not die over it.
    use std::io::Write as _;
    let mut out = std::io::stdout();
    let _ = writeln!(out, "listening on {addr}");
    let _ = out.flush();
    serve_listener(listener, opts)
}

/// [`serve`] on a listener the caller already bound (tests bind their
/// own port-0 listener to learn the address before serving).
///
/// # Errors
/// Socket setup failures.
pub fn serve_listener(listener: TcpListener, opts: &ServerOptions) -> Result<(), String> {
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let pipeline = match &opts.store {
        Some(dir) => {
            let store = ReportStore::open(std::path::Path::new(dir))
                .map_err(|e| format!("open store {dir}: {e}"))?;
            Pipeline::with_store(opts.cache_cap, store)
        }
        None => Pipeline::with_report_capacity(opts.cache_cap),
    };
    let state = Arc::new(ServerState {
        pipeline,
        defaults: opts.defaults.clone(),
        addr,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        analyzed: AtomicU64::new(0),
        overloaded: AtomicU64::new(0),
        queued: AtomicU64::new(0),
        started: Instant::now(),
        drain_deadline_ms: opts.drain_deadline_ms,
        request_deadline_ms: opts.request_deadline_ms,
    });
    term_signal::watch(&state);

    let (tx, rx) = sync_channel::<TcpStream>(opts.queue);
    let dispatcher = {
        let state = Arc::clone(&state);
        let batch = opts.batch;
        std::thread::spawn(move || dispatch(&state, &rx, batch))
    };

    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        match tx.try_send(stream) {
            Ok(()) => {
                state.queued.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(mut s)) => {
                // Backpressure: the bounded queue is the admission control
                // of the transport layer — refuse immediately, don't
                // buffer. Retry-After tracks the observed drain rate so
                // backed-off clients spread out.
                let seq = state.overloaded.fetch_add(1, Ordering::Relaxed);
                let retry = retry_after_secs(
                    state.queued.load(Ordering::Relaxed),
                    state.requests.load(Ordering::Relaxed),
                    state.started.elapsed().as_millis() as u64,
                    seq,
                );
                let body = error_body_raw("overloaded", 0, "accept queue full, retry later");
                let _ = write_response(
                    &mut s,
                    503,
                    &[("Retry-After".to_string(), retry.to_string())],
                    &body,
                    false,
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    drop(tx);
    dispatcher
        .join()
        .map_err(|_| "dispatcher thread panicked".to_string())?;
    // The journal holds everything already (appends are write-behind);
    // the drain's last act forces it to stable storage.
    if let Err(e) = state.pipeline.flush_store() {
        eprintln!("store flush on shutdown: {e}");
    }
    // Best-effort, as with the startup banner: stdout may be gone.
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "shutdown complete");
    Ok(())
}

/// Seconds a 503-refused client should wait before retrying, computed
/// from the queue depth and the observed drain rate, with a small
/// deterministic stagger (rotating on the overload sequence number) so
/// synchronized clients spread out instead of stampeding back together.
pub fn retry_after_secs(queued: u64, served: u64, elapsed_ms: u64, seq: u64) -> u64 {
    // Observed drain rate in requests/second, floored at 1 so the answer
    // stays defined on a cold or stalled server.
    let rate = served
        .saturating_mul(1000)
        .checked_div(elapsed_ms)
        .map_or(1, |r| r.max(1));
    let wait = queued.saturating_add(1).div_ceil(rate).clamp(1, 60);
    wait.saturating_add(seq % 3).min(60)
}

/// SIGTERM → graceful drain, without a libc dependency: a raw `signal(2)`
/// registration stores an async-signal-safe flag, and a watcher thread
/// turns the flag into the same shutdown path `/shutdown` takes (the
/// handler itself must not touch sockets or locks).
#[cfg(unix)]
mod term_signal {
    use super::ServerState;
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Weak};
    use std::time::Duration;

    static TERM: AtomicBool = AtomicBool::new(false);

    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Registers the handler and spawns the watcher. The watcher holds
    /// only a weak reference, so it dies with the server rather than
    /// keeping its state alive.
    pub fn watch(state: &Arc<ServerState>) {
        unsafe {
            signal(SIGTERM, on_term);
        }
        let weak: Weak<ServerState> = Arc::downgrade(state);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(50));
            let Some(state) = weak.upgrade() else { break };
            if TERM.load(Ordering::SeqCst) {
                state.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(state.addr);
                break;
            }
        });
    }
}

#[cfg(not(unix))]
mod term_signal {
    use super::ServerState;
    use std::sync::Arc;

    /// No signal handling off unix; `/shutdown` remains the drain path.
    pub fn watch(_state: &Arc<ServerState>) {}
}

/// How long one read attempt on a connection blocks per cycle.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// The dispatcher: drains accepted connections into batches and serves
/// each batch concurrently on the rayon pool (one request per connection
/// per cycle; keep-alive connections are requeued).
///
/// When the shutdown flag flips, the dispatcher does not abandon its
/// queue: it enters a **drain** — already-accepted connections keep
/// being served (keep-alives are dropped once answered) until both the
/// queue and the channel are empty or the drain deadline expires,
/// whichever comes first. The deadline is checked between batches, so
/// an in-flight batch always completes.
fn dispatch(state: &ServerState, rx: &Receiver<TcpStream>, batch: usize) {
    let mut pending: VecDeque<TcpStream> = VecDeque::new();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if state.shutdown.load(Ordering::SeqCst) && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + Duration::from_millis(state.drain_deadline_ms));
        }
        let draining = drain_deadline.is_some();
        if drain_deadline.is_some_and(|d| Instant::now() >= d) {
            break; // drain budget spent: drop the remainder
        }
        if pending.is_empty() {
            let wait = Duration::from_millis(if draining { 10 } else { 100 });
            match rx.recv_timeout(wait) {
                Ok(s) => {
                    state.queued.fetch_sub(1, Ordering::Relaxed);
                    pending.push_back(s);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                // Channel gone and queue empty: the drain is complete
                // (outside a shutdown this cannot happen — the accept
                // loop owns the sender).
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        while pending.len() < batch {
            match rx.try_recv() {
                Ok(s) => {
                    state.queued.fetch_sub(1, Ordering::Relaxed);
                    pending.push_back(s);
                }
                Err(_) => break,
            }
        }
        let take = pending.len().min(batch);
        let cycle: Vec<TcpStream> = pending.drain(..take).collect();
        let keep: Vec<Option<TcpStream>> = cycle
            .into_par_iter()
            .map(|s| serve_connection(state, s))
            .collect();
        if !draining {
            // During a drain only queued work is owed an answer; an
            // answered keep-alive connection is dropped, not requeued.
            pending.extend(keep.into_iter().flatten());
        }
    }
}

/// Serves at most one request on the connection; returns it for
/// requeueing when it should stay open.
fn serve_connection(state: &ServerState, mut stream: TcpStream) -> Option<TcpStream> {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return None;
    }
    match read_request(&mut stream, state.request_deadline_ms) {
        Ok(ReadOutcome::Idle) => {
            // Idle keep-alive connection between requests; drop it once
            // the daemon is stopping.
            if state.shutdown.load(Ordering::SeqCst) {
                None
            } else {
                Some(stream)
            }
        }
        Ok(ReadOutcome::Closed) => None,
        Ok(ReadOutcome::Request(req)) => {
            state.requests.fetch_add(1, Ordering::Relaxed);
            let (status, headers, body) = handle(state, &req);
            let ok = write_response(&mut stream, status, &headers, &body, req.keep_alive).is_ok();
            if ok && req.keep_alive {
                Some(stream)
            } else {
                None
            }
        }
        Err(ReadError::Timeout(msg)) => {
            // The client was too slow, not wrong: 408, deadline class.
            let body = error_body_raw("deadline", 5, &format!("request timed out: {msg}"));
            let _ = write_response(&mut stream, 408, &[], &body, false);
            None
        }
        Err(ReadError::Malformed(msg)) => {
            let body = error_body_raw("parse", 2, &format!("bad request: {msg}"));
            let _ = write_response(&mut stream, 400, &[], &body, false);
            None
        }
    }
}

type HandlerResult = (u16, Vec<(String, String)>, String);

/// Routes one request.
fn handle(state: &ServerState, req: &Request) -> HandlerResult {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/analyze") => handle_analyze(state, req),
        ("GET", "/healthz") => (200, Vec::new(), "{\"ok\": true}".to_string()),
        ("GET", "/stats") => (200, Vec::new(), stats_body(state)),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.addr);
            (
                200,
                Vec::new(),
                "{\"ok\": true, \"shutting_down\": true}".to_string(),
            )
        }
        (_, "/analyze" | "/shutdown") => (
            405,
            Vec::new(),
            error_body_raw("refused", 3, "method not allowed (use POST)"),
        ),
        (_, "/healthz" | "/stats") => (
            405,
            Vec::new(),
            error_body_raw("refused", 3, "method not allowed (use GET)"),
        ),
        (_, path) => (
            404,
            Vec::new(),
            error_body_raw("refused", 3, &format!("no such endpoint {path}")),
        ),
    }
}

/// `POST /analyze`. Two request forms share one option switchboard:
///
/// * **typed JSON body** (the body's first non-whitespace byte is `{`) —
///   an [`AnalyzeRequest`] carrying the kernel source plus `options` /
///   `budgets` / `engines` members (`.iolb` sources cannot start with
///   `{`, so the sniff is unambiguous);
/// * **raw kernel body** with options in the query string — the original
///   interface, kept as a deprecated alias.
///
/// Option precedence: daemon defaults, then query parameters, then body
/// members — later wins. Both forms resolve to the same
/// `(source, options)` pair, so a given request produces byte-identical
/// response bodies either way (the golden-exchange test pins this).
fn handle_analyze(state: &ServerState, req: &Request) -> HandlerResult {
    state.analyzed.fetch_add(1, Ordering::Relaxed);
    let mut opts = state.defaults.clone();
    for (key, value) in &req.query {
        if let Err(e) = opts.set(key, value) {
            return (
                400,
                Vec::new(),
                error_body_raw("parse", 2, &format!("bad query option: {e}")),
            );
        }
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            return (
                400,
                Vec::new(),
                error_body_raw("parse", 2, "kernel body is not UTF-8"),
            );
        }
    };
    let source;
    let src = if body.trim_start().starts_with('{') {
        let parsed = match AnalyzeRequest::parse(body) {
            Ok(r) => r,
            Err(e) => {
                return (
                    400,
                    Vec::new(),
                    error_body_raw("parse", 2, &format!("bad request body: {e}")),
                );
            }
        };
        for (key, value) in &parsed.sets {
            if let Err(e) = opts.set(key, value) {
                return (
                    400,
                    Vec::new(),
                    error_body_raw("parse", 2, &format!("bad body option: {e}")),
                );
            }
        }
        source = parsed.source;
        source.as_str()
    } else {
        body
    };
    match state.pipeline.serve(src, &opts) {
        Ok(answer) => {
            let cache_header = (
                "X-Iolb-Cache".to_string(),
                if answer.cached() { "hit" } else { "miss" }.to_string(),
            );
            (200, vec![cache_header], answer.body.as_ref().clone())
        }
        Err(e) => (status_for(&e), Vec::new(), error_body(&e)),
    }
}

/// HTTP status for each [`AnalysisError`] class.
pub fn status_for(e: &AnalysisError) -> u16 {
    match e {
        AnalysisError::Parse(_) => 400,
        AnalysisError::Refused(_) => 422,
        AnalysisError::BudgetExceeded { .. } => 413,
        AnalysisError::Deadline { .. } => 408,
        AnalysisError::Cancelled => 499,
        AnalysisError::Internal(_) => 500,
    }
}

/// JSON error envelope for a typed analysis error.
pub fn error_body(e: &AnalysisError) -> String {
    error_body_raw(e.class_name(), e.exit_code(), &e.to_string())
}

fn error_body_raw(class: &str, exit_class: u8, message: &str) -> String {
    format!(
        "{{\n  \"schema\": \"hourglass-iolb/serve/v1\",\n  \"error\": {{\"class\": {}, \"exit_class\": {exit_class}, \"message\": {}}}\n}}\n",
        json_str(class),
        json_str(message)
    )
}

/// `/stats` body (`serve-stats/v3`): request counters, both cache
/// layers' counters, the live queue depth, and — when a `--store` is
/// attached — the persistent store's append/hit/compaction counters plus
/// what recovery found at startup.
fn stats_body(state: &ServerState) -> String {
    let cache = state.pipeline.cache().stats();
    let store = match state.pipeline.store() {
        Some(s) => {
            let st = s.stats();
            format!(
                "{{\n    \"entries\": {},\n    \"appends\": {},\n    \"append_errors\": {},\n    \"persisted_hits\": {},\n    \"compactions\": {},\n    \"recovered_records\": {},\n    \"snapshot_records\": {},\n    \"skipped_corrupt_records\": {},\n    \"torn_tail_bytes\": {}\n  }}",
                st.entries,
                st.appends,
                st.append_errors,
                st.persisted_hits,
                st.compactions,
                st.recovery.recovered_records,
                st.recovery.snapshot_records,
                st.recovery.skipped_corrupt_records,
                st.recovery.torn_tail_bytes,
            )
        }
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": \"hourglass-iolb/serve-stats/v3\",\n  \"requests\": {},\n  \"analyzed\": {},\n  \"overloaded\": {},\n  \"queue_depth\": {},\n  \"cache\": {{\n    \"parse\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n    \"report\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}\n  }},\n  \"report_entries\": {},\n  \"report_capacity\": {},\n  \"store\": {store}\n}}\n",
        state.requests.load(Ordering::Relaxed),
        state.analyzed.load(Ordering::Relaxed),
        state.overloaded.load(Ordering::Relaxed),
        state.queued.load(Ordering::Relaxed),
        cache.parse.hits,
        cache.parse.misses,
        cache.parse.evictions,
        cache.report.hits,
        cache.report.misses,
        cache.report.evictions,
        state.pipeline.cache().report_entries(),
        state.pipeline.cache().report_capacity(),
    )
}

#[cfg(test)]
mod tests {
    use super::retry_after_secs;

    #[test]
    fn retry_after_grows_with_queue_depth() {
        // Fixed drain rate of ~10 req/s (1000 served over 100s).
        let served = 1000;
        let elapsed = 100_000;
        let shallow = retry_after_secs(5, served, elapsed, 0);
        let deep = retry_after_secs(500, served, elapsed, 0);
        assert!(deep > shallow, "deep {deep} <= shallow {shallow}");
        assert!((1..=60).contains(&shallow));
        assert!((1..=60).contains(&deep));
    }

    #[test]
    fn retry_after_staggers_consecutive_refusals() {
        let waits: Vec<u64> = (0..3)
            .map(|seq| retry_after_secs(10, 1000, 100_000, seq))
            .collect();
        // The rotating stagger must not hand every refused client the
        // same wait (that would re-synchronize the stampede).
        assert!(waits.windows(2).any(|w| w[0] != w[1]), "{waits:?}");
    }

    #[test]
    fn retry_after_is_sane_on_cold_and_stalled_servers() {
        // Cold start: nothing served yet, no elapsed time.
        assert_eq!(retry_after_secs(0, 0, 0, 0), 1);
        // Stalled server, huge queue: clamped to a minute.
        assert_eq!(retry_after_secs(u64::MAX, 0, 60_000, 0), 60);
    }
}
