//! Golden snapshots of the daemon's HTTP exchanges — one per
//! [`AnalysisError`] class the service maps onto a status code (parse →
//! 400, refused → 422, budget → 413, deadline → 408) plus one success
//! envelope. The daemon redacts all volatile report data, so every
//! response here is byte-stable across machines and thread counts.
//!
//! To regenerate after an intentional schema change:
//! `UPDATE_GOLDEN=1 cargo test -p iolbd --test http_golden`.

use iolbd::{serve_listener, ServerOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn kernels_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

fn kernel(name: &str) -> String {
    std::fs::read_to_string(kernels_dir().join(name)).expect("kernel file")
}

/// Starts a daemon on an ephemeral port; returns its address and the
/// join handle (the server exits on `POST /shutdown`).
fn start_daemon() -> (SocketAddr, std::thread::JoinHandle<()>) {
    start_daemon_with(ServerOptions::default())
}

/// [`start_daemon`] with explicit options (deadline/drain tests).
fn start_daemon_with(opts: ServerOptions) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &opts).expect("serve");
    });
    (addr, handle)
}

fn post(path_query: &str, body: &str) -> String {
    format!(
        "POST {path_query} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
}

/// One request on a fresh connection; reads to EOF (Connection: close).
fn exchange(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    response
}

/// Reads one response off a keep-alive connection (headers +
/// `Content-Length` body).
fn read_response(stream: &mut TcpStream) -> String {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).expect("utf8 head");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("length value");
    while buf.len() < head_end + 4 + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    String::from_utf8(buf).expect("utf8 response")
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let response = exchange(addr, &post("/shutdown", ""));
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    handle.join().expect("server thread");
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (regenerate with UPDATE_GOLDEN=1 cargo test -p iolbd --test http_golden)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from the golden snapshot — if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1",
    );
}

#[test]
fn error_class_exchanges_match_golden_snapshots() {
    let (addr, handle) = start_daemon();

    // parse → 400: the body is not a kernel.
    check_golden(
        "analyze_parse_error.http",
        &exchange(addr, &post("/analyze", "kernel junk {")),
    );
    // refused → 422: parses, but names no such statement.
    check_golden(
        "analyze_refused.http",
        &exchange(addr, &post("/analyze?stmt=nope", &kernel("jacobi2d.iolb"))),
    );
    // budget → 413: admission control kills it before materialization.
    check_golden(
        "analyze_budget.http",
        &exchange(addr, &post("/analyze?max-trace=10", &kernel("syrk.iolb"))),
    );
    // deadline → 408: injected at the admission seam.
    check_golden(
        "analyze_deadline.http",
        &exchange(
            addr,
            &post(
                "/analyze?inject=deadline%40admission",
                &kernel("gemm_tiled.iolb"),
            ),
        ),
    );
    // Success envelope (bounds only, so the exchange stays fast).
    check_golden(
        "analyze_derive_only.http",
        &exchange(
            addr,
            &post(
                "/analyze?derive-only&params=M=6,N=6,K=6",
                &kernel("gemm_tiled.iolb"),
            ),
        ),
    );

    shutdown(addr, handle);
}

#[test]
fn cache_hits_surface_in_header_and_stats() {
    let (addr, handle) = start_daemon();
    let req = post(
        "/analyze?derive-only&params=M=6,N=6,K=6",
        &kernel("gemm_tiled.iolb"),
    );
    let cold = exchange(addr, &req);
    assert!(cold.contains("X-Iolb-Cache: miss"), "{cold}");
    let warm = exchange(addr, &req);
    assert!(warm.contains("X-Iolb-Cache: hit"), "{warm}");

    // Same kernel, formatting variant: still a hit.
    let variant = format!("# a comment\n\n{}", kernel("gemm_tiled.iolb"));
    let response = exchange(
        addr,
        &post("/analyze?derive-only&params=M=6,N=6,K=6", &variant),
    );
    assert!(response.contains("X-Iolb-Cache: hit"), "{response}");

    // Identical payloads beyond the headers.
    let body = |r: &str| r.split("\r\n\r\n").nth(1).map(str::to_string);
    assert_eq!(body(&cold), body(&warm));
    assert_eq!(body(&cold), body(&response));

    let stats = exchange(addr, &get("/stats"));
    assert!(
        stats.contains("\"report\": {\"hits\": 2, \"misses\": 1, \"evictions\": 0}"),
        "{stats}"
    );
    assert!(
        stats.contains("\"schema\": \"hourglass-iolb/serve-stats/v3\""),
        "{stats}"
    );
    assert!(stats.contains("\"report_capacity\": 512"), "{stats}");
    assert!(stats.contains("\"queue_depth\": "), "{stats}");
    // No --store attached: the store member is explicit null, not absent.
    assert!(stats.contains("\"store\": null"), "{stats}");
    shutdown(addr, handle);
}

#[test]
fn typed_body_and_query_alias_are_byte_identical() {
    // Each form gets its own fresh daemon, so both exchanges are cold
    // (identical X-Iolb-Cache headers) and byte equality covers the whole
    // response — status line, headers, and payload.
    let src = kernel("gemm_tiled.iolb");
    let (addr, handle) = start_daemon();
    let query_form = exchange(addr, &post("/analyze?derive-only&params=M=6,N=6,K=6", &src));
    shutdown(addr, handle);

    let (addr, handle) = start_daemon();
    let body = format!(
        "{{\"source\": {}, \"options\": {{\"derive-only\": true, \"params\": \"M=6,N=6,K=6\"}}}}",
        iolb_bench::sweep::json_str(&src)
    );
    let body_form = exchange(addr, &post("/analyze", &body));
    shutdown(addr, handle);

    check_golden("analyze_typed_body.http", &body_form);
    assert_eq!(
        query_form, body_form,
        "typed JSON body and deprecated query alias must answer identically"
    );
}

#[test]
fn typed_body_options_win_over_query_params() {
    let (addr, handle) = start_daemon();
    // The query names a nonexistent statement; the body overrides it back
    // to a real one — later (body) wins, so the request succeeds.
    let src = kernel("gemm_tiled.iolb");
    let body = format!(
        "{{\"source\": {}, \"options\": {{\"stmt\": \"SU\", \"derive-only\": true, \"params\": \"M=6,N=6,K=6\"}}}}",
        iolb_bench::sweep::json_str(&src)
    );
    let response = exchange(addr, &post("/analyze?stmt=nope", &body));
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");

    // Malformed bodies and bad option values get the parse-class 400 with
    // the shared switchboard's diagnostics, same vocabulary as the query.
    let bad = exchange(addr, &post("/analyze", "{\"options\": {}}"));
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    assert!(bad.contains("source"), "{bad}");
    let q = exchange(addr, &post("/analyze?engines=frobnicate", "x"));
    assert!(q.starts_with("HTTP/1.1 400"), "{q}");
    assert!(q.contains("unknown bound engine"), "{q}");
    let b = exchange(
        addr,
        &post(
            "/analyze",
            "{\"source\": \"x\", \"engines\": \"frobnicate\"}",
        ),
    );
    assert!(b.starts_with("HTTP/1.1 400"), "{b}");
    assert!(b.contains("unknown bound engine"), "{b}");
    shutdown(addr, handle);
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let (addr, handle) = start_daemon();
    let mut stream = TcpStream::connect(addr).expect("connect");
    for i in 0..3 {
        let body = kernel("cholesky.iolb");
        let req = format!(
            "POST /analyze?derive-only&params=N=8 HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).expect("send");
        let response = read_response(&mut stream);
        assert!(
            response.starts_with("HTTP/1.1 200"),
            "request {i}: {response}"
        );
        assert!(response.contains("Connection: keep-alive"), "{response}");
        assert!(
            response.contains(if i == 0 { "miss" } else { "hit" }),
            "request {i}: {response}"
        );
    }
    drop(stream);
    shutdown(addr, handle);
}

#[test]
fn health_stats_and_routing() {
    let (addr, handle) = start_daemon();
    assert!(exchange(addr, &get("/healthz")).starts_with("HTTP/1.1 200"));
    assert!(exchange(addr, &get("/nope")).starts_with("HTTP/1.1 404"));
    assert!(exchange(addr, &get("/analyze")).starts_with("HTTP/1.1 405"));
    assert!(exchange(addr, &post("/healthz", "")).starts_with("HTTP/1.1 405"));
    // Unknown query option → 400 with the option parser's diagnostic.
    let response = exchange(addr, &post("/analyze?frobnicate=1", "x"));
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("unknown option"), "{response}");
    shutdown(addr, handle);
}

#[test]
fn slow_request_hits_the_wall_deadline_with_a_golden_408() {
    let opts = ServerOptions {
        request_deadline_ms: 200,
        ..ServerOptions::default()
    };
    let (addr, handle) = start_daemon_with(opts);
    let mut stream = TcpStream::connect(addr).expect("connect");
    // A slowloris: start a request head, then never finish it. The
    // per-read timeout alone would keep this connection forever; the
    // wall deadline answers 408 and closes it.
    stream
        .write_all(b"POST /analyze HTTP/1.1\r\nContent-Length: 5\r\n")
        .expect("send partial head");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    assert!(response.starts_with("HTTP/1.1 408"), "{response}");
    assert!(response.contains("Connection: close"), "{response}");
    check_golden("analyze_request_timeout.http", &response);
    shutdown(addr, handle);
}
