//! Socket-level fault injection for the daemon's HTTP framing.
//!
//! [`read_request`](iolbd::http::read_request) and
//! [`write_response`](iolbd::http::write_response) are generic over the
//! stream, so every transport misbehaviour a real peer can produce —
//! short reads, timeout trickle (slowloris), mid-request disconnects,
//! hard transport errors, write-side failures — can be scripted
//! deterministically in memory. Each fault cell asserts the *exact*
//! error class (`Timeout` answers 408, `Malformed` answers 400) and is
//! paired with a clean control run proving the parser itself is not what
//! failed.

use iolbd::http::{read_request, write_response, ReadError, ReadOutcome};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::time::Duration;

/// One step of a scripted connection.
enum Action {
    /// Deliver these bytes (possibly fewer per `read` call than asked).
    Data(Vec<u8>),
    /// One read that times out (`WouldBlock`), as a real socket with a
    /// short read timeout reports an idle window.
    Block,
    /// Sleep, then time out — models a slow client burning wall clock
    /// between bytes without ever stalling long enough for the backstop.
    Wait(Duration),
    /// Clean disconnect: `read` returns `Ok(0)`.
    Disconnect,
    /// Hard transport error.
    Fail(ErrorKind),
}

/// An in-memory stream that plays back a fault script.
struct Scripted {
    script: VecDeque<Action>,
}

impl Scripted {
    fn new(script: Vec<Action>) -> Scripted {
        Scripted {
            script: script.into(),
        }
    }
}

impl Read for Scripted {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.script.pop_front() {
            Some(Action::Data(bytes)) => {
                let n = bytes.len().min(buf.len());
                buf[..n].copy_from_slice(&bytes[..n]);
                if n < bytes.len() {
                    self.script.push_front(Action::Data(bytes[n..].to_vec()));
                }
                Ok(n)
            }
            Some(Action::Block) => Err(ErrorKind::WouldBlock.into()),
            Some(Action::Wait(d)) => {
                std::thread::sleep(d);
                Err(ErrorKind::WouldBlock.into())
            }
            Some(Action::Disconnect) => Ok(0),
            Some(Action::Fail(kind)) => Err(kind.into()),
            None => panic!("script exhausted: read_request asked for more than the script holds"),
        }
    }
}

/// Splits `bytes` into one `Data` action per byte — the shortest possible
/// reads a peer can produce.
fn byte_at_a_time(bytes: &[u8]) -> Vec<Action> {
    bytes.iter().map(|&b| Action::Data(vec![b])).collect()
}

fn timeout_of(result: Result<ReadOutcome, ReadError>) -> String {
    match result {
        Err(ReadError::Timeout(m)) => m,
        other => panic!("expected Timeout, got {other:?}"),
    }
}

fn malformed_of(result: Result<ReadOutcome, ReadError>) -> String {
    match result {
        Err(ReadError::Malformed(m)) => m,
        other => panic!("expected Malformed, got {other:?}"),
    }
}

const POST: &[u8] = b"POST /analyze?stmt=SU HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";

#[test]
fn one_byte_reads_parse_cleanly() {
    // Clean control for every short-read cell: the worst legal peer (one
    // byte per read) still yields a complete, correctly-framed request.
    let mut stream = Scripted::new(byte_at_a_time(POST));
    let outcome = read_request(&mut stream, 0).expect("clean parse");
    let ReadOutcome::Request(req) = outcome else {
        panic!("expected a request, got {outcome:?}");
    };
    assert_eq!(req.method, "POST");
    assert_eq!(req.path, "/analyze");
    assert_eq!(req.query, vec![("stmt".to_string(), "SU".to_string())]);
    assert_eq!(req.body, b"hello");
    assert!(req.keep_alive);
}

#[test]
fn interleaved_timeout_windows_do_not_break_a_patient_request() {
    // Blocks *between* bytes are normal on a socket with a short read
    // timeout; as long as they stay under the stall backstop and the
    // request finishes inside the wall deadline, it parses.
    let mut script = Vec::new();
    for &b in POST {
        script.push(Action::Data(vec![b]));
        script.push(Action::Block);
    }
    script.pop(); // no trailing read after the body completes
    let mut stream = Scripted::new(script);
    let outcome = read_request(&mut stream, 0).expect("patient request parses");
    let ReadOutcome::Request(req) = outcome else {
        panic!("expected a request, got {outcome:?}");
    };
    assert_eq!(req.body, b"hello");
}

#[test]
fn slowloris_head_trickle_hits_the_wall_deadline() {
    // One byte per ~5 ms never stalls, but the wall deadline (armed at
    // the first byte) closes the hole: the trickle cannot outlive
    // --request-deadline-ms.
    let mut script = vec![Action::Data(b"P".to_vec())];
    for _ in 0..100 {
        script.push(Action::Wait(Duration::from_millis(5)));
        script.push(Action::Data(b"O".to_vec()));
    }
    let mut stream = Scripted::new(script);
    let msg = timeout_of(read_request(&mut stream, 30));
    assert!(
        msg.contains("--request-deadline-ms=30") && msg.contains("reading the head"),
        "unexpected timeout message: {msg}"
    );
}

#[test]
fn slowloris_body_trickle_hits_the_wall_deadline() {
    let head = b"POST /analyze HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
    let mut script = vec![Action::Data(head.to_vec())];
    for _ in 0..100 {
        script.push(Action::Wait(Duration::from_millis(5)));
        script.push(Action::Data(b"x".to_vec()));
    }
    let mut stream = Scripted::new(script);
    let msg = timeout_of(read_request(&mut stream, 30));
    assert!(
        msg.contains("--request-deadline-ms=30") && msg.contains("reading the body"),
        "unexpected timeout message: {msg}"
    );
}

#[test]
fn idle_connection_never_ticks_the_deadline() {
    // A keep-alive connection with no bytes in flight is Idle, not
    // Timeout — the wall clock only starts at the request's first byte.
    let mut stream = Scripted::new(vec![Action::Wait(Duration::from_millis(10)), Action::Block]);
    match read_request(&mut stream, 1) {
        Ok(ReadOutcome::Idle) => {}
        other => panic!("expected Idle, got {other:?}"),
    }
}

#[test]
fn stall_backstop_trips_without_a_wall_deadline() {
    // Even with --request-deadline-ms=0 (wall deadline off), a client
    // that starts a request and then goes silent is bounded by the
    // consecutive-stall backstop.
    let mut script = vec![Action::Data(b"GET /".to_vec())];
    for _ in 0..41 {
        script.push(Action::Block);
    }
    let mut stream = Scripted::new(script);
    let msg = timeout_of(read_request(&mut stream, 0));
    assert!(msg.contains("timed out mid-request"), "got: {msg}");
}

#[test]
fn disconnect_mid_head_is_malformed() {
    let mut stream = Scripted::new(vec![
        Action::Data(b"GET /stats HTTP/1.1\r\n".to_vec()),
        Action::Disconnect,
    ]);
    let msg = malformed_of(read_request(&mut stream, 0));
    assert!(msg.contains("closed mid-request"), "got: {msg}");
}

#[test]
fn disconnect_mid_body_is_malformed() {
    let mut stream = Scripted::new(vec![
        Action::Data(b"POST /analyze HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec()),
        Action::Disconnect,
    ]);
    let msg = malformed_of(read_request(&mut stream, 0));
    assert!(msg.contains("closed mid-body"), "got: {msg}");
}

#[test]
fn clean_disconnect_before_any_byte_is_closed_not_an_error() {
    let mut stream = Scripted::new(vec![Action::Disconnect]);
    match read_request(&mut stream, 0) {
        Ok(ReadOutcome::Closed) => {}
        other => panic!("expected Closed, got {other:?}"),
    }
}

#[test]
fn transport_error_mid_head_is_malformed() {
    let mut stream = Scripted::new(vec![
        Action::Data(b"GET ".to_vec()),
        Action::Fail(ErrorKind::ConnectionReset),
    ]);
    let msg = malformed_of(read_request(&mut stream, 0));
    assert!(msg.starts_with("read:"), "got: {msg}");
}

#[test]
fn transport_error_mid_body_is_malformed() {
    let mut stream = Scripted::new(vec![
        Action::Data(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab".to_vec()),
        Action::Fail(ErrorKind::ConnectionReset),
    ]);
    let msg = malformed_of(read_request(&mut stream, 0));
    assert!(msg.starts_with("read body:"), "got: {msg}");
}

/// Write side: succeeds for `good` bytes, then fails every call.
struct FailingWriter {
    good: usize,
    written: Vec<u8>,
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.written.len() >= self.good {
            return Err(ErrorKind::BrokenPipe.into());
        }
        let n = buf.len().min(self.good - self.written.len());
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn short_writes_then_disconnect_surface_as_a_write_error() {
    // The peer accepts 10 bytes of the response and vanishes. The daemon
    // must see a typed error (it logs and drops the connection), not a
    // panic or a silent half-written response.
    let mut w = FailingWriter {
        good: 10,
        written: Vec::new(),
    };
    let err = write_response(&mut w, 200, &[], "{}", true).expect_err("write must fail");
    assert!(err.starts_with("write:"), "got: {err}");
    assert_eq!(w.written.len(), 10, "exactly the accepted prefix went out");

    // Clean control: an unlimited writer receives the full frame.
    let mut ok = FailingWriter {
        good: usize::MAX,
        written: Vec::new(),
    };
    write_response(&mut ok, 200, &[], "{}", true).expect("clean write");
    let text = String::from_utf8(ok.written).expect("utf8");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
    assert!(text.ends_with("\r\n\r\n{}"));
}
