//! End-to-end crash-safety of the daemon's persistent report store.
//!
//! A daemon started with `--store DIR` must serve byte-identical report
//! bodies after a restart against the same directory, tolerate a
//! corrupted journal record (skip it, count it, recompute — never serve
//! bytes that failed their checksum), and truncate a torn journal tail
//! left behind by a crash mid-append. The out-of-process kill -9 variant
//! lives in `cargo xtask crash-smoke`; these tests cover the same
//! contracts in-process where the assertions can be exact.

use iolbd::{serve_listener, ServerOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

fn kernel(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../kernels")
        .join(name);
    std::fs::read_to_string(path).expect("kernel file")
}

/// A scratch store directory, removed on drop.
struct StoreDir(PathBuf);

impl StoreDir {
    fn new() -> StoreDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "iolbd_persistence_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        StoreDir(dir)
    }

    fn journal(&self) -> PathBuf {
        self.0.join(iolb_service::JOURNAL_FILE)
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_daemon(store: &StoreDir) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let opts = ServerOptions {
        store: Some(store.0.to_string_lossy().into_owned()),
        ..ServerOptions::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &opts).expect("serve");
    });
    (addr, handle)
}

fn post(path_query: &str, body: &str) -> String {
    format!(
        "POST {path_query} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn exchange(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    response
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let response = exchange(addr, &post("/shutdown", ""));
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    handle.join().expect("server thread");
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .expect("response has a body")
}

fn stats(addr: SocketAddr) -> String {
    exchange(
        addr,
        "GET /stats HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    )
}

/// Pulls one integer field out of the `/stats` store object.
fn store_stat(stats: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\": ");
    let at = stats
        .find(&needle)
        .unwrap_or_else(|| panic!("{field} missing from stats: {stats}"));
    stats[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{field} not a number in stats: {stats}"))
}

const GEMM_QUERY: &str = "/analyze?derive-only&params=M=6,N=6,K=6";

#[test]
fn restart_against_the_same_store_serves_byte_identical_warm_bodies() {
    let dir = StoreDir::new();

    // First life: compute one report, journal it, drain out.
    let (addr, handle) = start_daemon(&dir);
    let cold = exchange(addr, &post(GEMM_QUERY, &kernel("gemm_tiled.iolb")));
    assert!(cold.contains("X-Iolb-Cache: miss"), "{cold}");
    let before = stats(addr);
    assert_eq!(store_stat(&before, "appends"), 1, "{before}");
    assert_eq!(store_stat(&before, "entries"), 1, "{before}");
    shutdown(addr, handle);
    assert!(dir.journal().exists(), "journal must survive the daemon");

    // Second life: the store recovers the record and serves it as a hit
    // without recomputing — and the bytes are identical to the cold run.
    let (addr, handle) = start_daemon(&dir);
    let warm = exchange(addr, &post(GEMM_QUERY, &kernel("gemm_tiled.iolb")));
    assert!(warm.contains("X-Iolb-Cache: hit"), "{warm}");
    assert_eq!(
        body_of(&cold),
        body_of(&warm),
        "persisted body must be byte-identical to the computed one"
    );
    let after = stats(addr);
    assert_eq!(store_stat(&after, "recovered_records"), 1, "{after}");
    assert_eq!(store_stat(&after, "persisted_hits"), 1, "{after}");
    assert_eq!(store_stat(&after, "skipped_corrupt_records"), 0, "{after}");
    // A store hit is invisible to the in-memory report cache counters.
    assert!(
        after.contains("\"report\": {\"hits\": 0, \"misses\": 0, \"evictions\": 0}"),
        "{after}"
    );
    shutdown(addr, handle);
}

#[test]
fn corrupt_journal_record_is_skipped_counted_and_recomputed_never_served() {
    let dir = StoreDir::new();

    // Journal two distinct reports.
    let (addr, handle) = start_daemon(&dir);
    let gemm = exchange(addr, &post(GEMM_QUERY, &kernel("gemm_tiled.iolb")));
    let chol = exchange(
        addr,
        &post("/analyze?derive-only&params=N=8", &kernel("cholesky.iolb")),
    );
    assert!(gemm.contains("X-Iolb-Cache: miss"), "{gemm}");
    assert!(chol.contains("X-Iolb-Cache: miss"), "{chol}");
    shutdown(addr, handle);

    // Flip one payload byte inside the *first* record (offset 10 is past
    // the 4-byte magic and 4-byte length, inside the payload): its CRC
    // check must now fail.
    let journal = dir.journal();
    let mut bytes = std::fs::read(&journal).expect("journal");
    assert!(bytes.len() > 16, "journal too small to corrupt");
    bytes[10] ^= 0xFF;
    std::fs::write(&journal, &bytes).expect("rewrite journal");

    // Restart: the corrupt record is skipped and counted, the intact
    // second record still recovers (resync on the record magic), and the
    // lost report is recomputed to the same bytes — corrupt stored bytes
    // are never served.
    let (addr, handle) = start_daemon(&dir);
    let s = stats(addr);
    assert_eq!(store_stat(&s, "skipped_corrupt_records"), 1, "{s}");
    assert_eq!(store_stat(&s, "recovered_records"), 1, "{s}");

    let chol_warm = exchange(
        addr,
        &post("/analyze?derive-only&params=N=8", &kernel("cholesky.iolb")),
    );
    assert!(chol_warm.contains("X-Iolb-Cache: hit"), "{chol_warm}");
    assert_eq!(body_of(&chol), body_of(&chol_warm));

    let gemm_again = exchange(addr, &post(GEMM_QUERY, &kernel("gemm_tiled.iolb")));
    assert!(
        gemm_again.contains("X-Iolb-Cache: miss"),
        "corrupt record must recompute, not serve: {gemm_again}"
    );
    assert_eq!(
        body_of(&gemm),
        body_of(&gemm_again),
        "recomputed body must match the original"
    );
    shutdown(addr, handle);
}

#[test]
fn torn_journal_tail_is_truncated_counted_and_the_prefix_recovers() {
    let dir = StoreDir::new();

    let (addr, handle) = start_daemon(&dir);
    let cold = exchange(addr, &post(GEMM_QUERY, &kernel("gemm_tiled.iolb")));
    shutdown(addr, handle);

    // Simulate a crash mid-append: a record that starts but never
    // finishes (magic + declared length, no payload).
    let journal = dir.journal();
    let intact = std::fs::read(&journal).expect("journal").len() as u64;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .expect("open journal");
    f.write_all(b"IOLR\xff\x00\x00\x00partial").expect("tear");
    drop(f);

    let (addr, handle) = start_daemon(&dir);
    let s = stats(addr);
    assert!(store_stat(&s, "torn_tail_bytes") > 0, "{s}");
    assert_eq!(store_stat(&s, "recovered_records"), 1, "{s}");
    assert_eq!(
        std::fs::metadata(&journal).expect("journal").len(),
        intact,
        "recovery must truncate the torn tail back to the intact prefix"
    );
    let warm = exchange(addr, &post(GEMM_QUERY, &kernel("gemm_tiled.iolb")));
    assert!(warm.contains("X-Iolb-Cache: hit"), "{warm}");
    assert_eq!(body_of(&cold), body_of(&warm));
    shutdown(addr, handle);
}
