//! Resource governance for the analysis pipeline.
//!
//! The deterministic pipeline (parse → certify → derive → CDAG → curve
//! sweep → tightness) was written as a batch tool that may panic or
//! allocate without bound on adversarial input. This crate is the
//! substrate that turns it into a service core:
//!
//! * [`Budget`] — configured resource ceilings (instances, CDAG
//!   nodes/edges, trace length, arena bytes, curve work, deadline).
//! * [`CostEstimate`] — symbolic pre-estimation of those resources from
//!   loop bounds, produced *before* any materialization, so over-budget
//!   requests are refused or down-scoped by admission control.
//! * [`CancelToken`] — cooperative cancellation (deadline + external flag
//!   + deterministic fault injection) checked at the hot-loop seams.
//! * [`AnalysisError`] — the typed error taxonomy replacing library
//!   panics on user-input paths, with a stable per-class exit code.
//! * [`Degradation`] — the graceful-degradation ladder (dense S grid →
//!   coarse grid → symbolic bounds only), recorded in report schemas.
//! * [`Fault`]/[`Seam`] — the fault-injection surface used by the
//!   `iolb fuzz --inject` harness to prove every governed seam survives
//!   a panic, budget exhaustion, or deadline without aborting the batch.
//!
//! The crate is dependency-free and sits below `ir`/`cdag`/`memsim`; the
//! facade re-exports it as `iolb_core::govern`.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe, UnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed failure of a governed analysis.
///
/// Each variant maps to a stable process exit code via
/// [`AnalysisError::exit_code`], so batch callers can distinguish fault
/// classes without parsing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The input could not be read or parsed as a `.iolb` kernel.
    Parse(String),
    /// The kernel parsed but was declined before or during analysis
    /// (uncertifiable accesses, unsupported nest shape, unknown
    /// statement, …). Not a resource problem: resubmitting with a larger
    /// budget will not help.
    Refused(String),
    /// Admission control or a mid-pass check found a resource need past
    /// its configured ceiling.
    BudgetExceeded {
        /// Which resource ran out (`"instances"`, `"cdag_nodes"`, …).
        resource: &'static str,
        /// Estimated or observed need (saturating; `u64::MAX` = overflow).
        needed: u64,
        /// The configured ceiling that was exceeded.
        limit: u64,
    },
    /// The wall-clock deadline passed mid-analysis.
    Deadline {
        /// The configured deadline in milliseconds.
        limit_ms: u64,
    },
    /// The caller flipped the token's external cancel flag.
    Cancelled,
    /// A panic escaped the analysis and was caught at the isolation
    /// boundary; the payload is preserved for the failure row.
    Internal(String),
}

impl AnalysisError {
    /// Short machine-readable class name used in report failure rows.
    pub fn class_name(&self) -> &'static str {
        match self {
            AnalysisError::Parse(_) => "parse",
            AnalysisError::Refused(_) => "refused",
            AnalysisError::BudgetExceeded { .. } => "budget",
            AnalysisError::Deadline { .. } => "deadline",
            AnalysisError::Cancelled => "cancelled",
            AnalysisError::Internal(_) => "internal",
        }
    }

    /// Stable process exit code for this class. `0` = success and `1` =
    /// unsound bound are reserved by the CLI; error classes start at 2.
    pub fn exit_code(&self) -> u8 {
        match self {
            AnalysisError::Parse(_) => 2,
            AnalysisError::Refused(_) => 3,
            AnalysisError::BudgetExceeded { .. } => 4,
            AnalysisError::Deadline { .. } => 5,
            AnalysisError::Cancelled => 6,
            AnalysisError::Internal(_) => 7,
        }
    }

    /// Reconstructs the error carried by a caught panic payload: a
    /// governed seam aborts by panicking with an `AnalysisError` box when
    /// it has no `Result` path, and anything else becomes `Internal`.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> AnalysisError {
        match payload.downcast::<AnalysisError>() {
            Ok(e) => *e,
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                AnalysisError::Internal(msg)
            }
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Parse(m) => write!(f, "parse error: {m}"),
            AnalysisError::Refused(m) => write!(f, "refused: {m}"),
            AnalysisError::BudgetExceeded {
                resource,
                needed,
                limit,
            } => {
                if *needed == u64::MAX {
                    write!(f, "budget exceeded: {resource} overflows (limit {limit})")
                } else {
                    write!(
                        f,
                        "budget exceeded: {resource} needs {needed} > limit {limit}"
                    )
                }
            }
            AnalysisError::Deadline { limit_ms } => {
                write!(f, "deadline exceeded: {limit_ms} ms")
            }
            AnalysisError::Cancelled => write!(f, "cancelled"),
            AnalysisError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Runs `f` behind a panic isolation boundary, mapping an escaped panic
/// to [`AnalysisError::Internal`] (or unwrapping a deliberately thrown
/// `AnalysisError`). Batch drivers wrap each kernel in this so one
/// poisoned input yields a structured failure row, not an abort.
pub fn catch_analysis<T>(
    f: impl FnOnce() -> Result<T, AnalysisError> + UnwindSafe,
) -> Result<T, AnalysisError> {
    match catch_unwind(f) {
        Ok(r) => r,
        Err(payload) => Err(AnalysisError::from_panic(payload)),
    }
}

/// Like [`catch_analysis`] for closures that capture `&mut` state the
/// caller discards on failure (the engines reset their buffers at the
/// start of every pass, so an unwound pass leaves no observable state).
pub fn catch_analysis_mut<T>(
    f: impl FnOnce() -> Result<T, AnalysisError>,
) -> Result<T, AnalysisError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(AnalysisError::from_panic(payload)),
    }
}

/// Configured resource ceilings. `Default` is fully unlimited; the CLI
/// narrows individual fields from `--max-*` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Max dynamic statement instances materialized per kernel.
    pub max_instances: u64,
    /// Max CDAG vertices (inputs + compute).
    pub max_cdag_nodes: u64,
    /// Max CDAG edges.
    pub max_cdag_edges: u64,
    /// Max packed program-order trace length.
    pub max_trace_len: u64,
    /// Max bytes of peak transient arena (cell tables, trace, CSR).
    pub max_arena_bytes: u64,
    /// Max curve-pass work: trace length × number of S-grid points. This
    /// is the knob the degradation ladder spends (dense → coarse →
    /// bounds-only) before refusing outright.
    pub max_work: u64,
    /// Wall-clock deadline per kernel in milliseconds (0 = none).
    pub deadline_ms: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with every ceiling at its maximum (no governance).
    pub fn unlimited() -> Budget {
        Budget {
            max_instances: u64::MAX,
            max_cdag_nodes: u64::MAX,
            max_cdag_edges: u64::MAX,
            max_trace_len: u64::MAX,
            max_arena_bytes: u64::MAX,
            max_work: u64::MAX,
            deadline_ms: 0,
        }
    }

    /// Whether any ceiling is below unlimited (deadline counts).
    pub fn is_limited(&self) -> bool {
        *self != Budget::unlimited()
    }

    /// The cancellation token enforcing this budget's deadline.
    pub fn token(&self) -> CancelToken {
        if self.deadline_ms == 0 {
            CancelToken::unlimited()
        } else {
            CancelToken::with_deadline(Duration::from_millis(self.deadline_ms))
        }
    }
}

/// Pre-materialization cost estimate, produced by admission control from
/// the symbolic loop bounds (`ir::admission::estimate`). All fields are
/// saturating: `u64::MAX` means "overflows u64", which exceeds every
/// finite budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostEstimate {
    /// Dynamic statement instances across all statements.
    pub instances: u64,
    /// Packed program-order trace length (accesses).
    pub trace_len: u64,
    /// CDAG vertices (inputs + compute instances).
    pub cdag_nodes: u64,
    /// CDAG edges (bounded above by trace reads).
    pub cdag_edges: u64,
    /// Peak transient arena bytes (cell tables + trace + CSR).
    pub arena_bytes: u64,
}

impl CostEstimate {
    /// First budget violation among the size-like resources (everything
    /// except curve work, which the degradation ladder owns).
    pub fn check(&self, budget: &Budget) -> Result<(), AnalysisError> {
        let checks: [(&'static str, u64, u64); 5] = [
            ("instances", self.instances, budget.max_instances),
            ("cdag_nodes", self.cdag_nodes, budget.max_cdag_nodes),
            ("cdag_edges", self.cdag_edges, budget.max_cdag_edges),
            ("trace_len", self.trace_len, budget.max_trace_len),
            ("arena_bytes", self.arena_bytes, budget.max_arena_bytes),
        ];
        for (resource, needed, limit) in checks {
            if needed > limit {
                return Err(AnalysisError::BudgetExceeded {
                    resource,
                    needed,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Degradation level the work budget affords: dense grid when
    /// `trace_len × dense_points` fits, else coarse grid when
    /// `trace_len × coarse_points` fits, else symbolic bounds only.
    pub fn degradation(
        &self,
        budget: &Budget,
        dense_points: u64,
        coarse_points: u64,
    ) -> Degradation {
        let fits = |points: u64| self.trace_len.saturating_mul(points) <= budget.max_work;
        if fits(dense_points) {
            Degradation::Full
        } else if fits(coarse_points) {
            Degradation::Coarse
        } else {
            Degradation::BoundsOnly
        }
    }
}

/// Graceful-degradation level of a kernel's report, recorded in the JSON
/// schemas so downstream consumers know which ladder rung produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Degradation {
    /// Dense ~32-point S grid, full sweep + tightness.
    Full,
    /// Coarse 5-point S grid; tightness skipped.
    Coarse,
    /// No materialization: symbolic bounds only.
    BoundsOnly,
}

impl Degradation {
    /// Stable schema string (`"full"`, `"coarse"`, `"bounds_only"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Degradation::Full => "full",
            Degradation::Coarse => "coarse",
            Degradation::BoundsOnly => "bounds_only",
        }
    }

    /// Parses a schema string back to a level.
    pub fn parse(s: &str) -> Option<Degradation> {
        match s {
            "full" => Some(Degradation::Full),
            "coarse" => Some(Degradation::Coarse),
            "bounds_only" => Some(Degradation::BoundsOnly),
            _ => None,
        }
    }
}

/// A governed seam: a hot loop that polls its [`CancelToken`]. Fault
/// injection targets one seam so the harness can prove each is covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seam {
    /// Admission-control pre-estimation, before any materialization.
    Admission,
    /// `for_each_instance` enumeration (trace build, certification).
    Instances,
    /// `build_cdag` cell-table / CSR fill.
    CdagFill,
    /// LRU stack-distance pass (Fenwick accumulation).
    LruPass,
    /// OPT stack-distance pass (displacement-chain repair).
    OptPass,
    /// Tightness auto-tuner candidate loop.
    Tuner,
    /// Persistent report store: journal record append.
    StoreAppend,
    /// Persistent report store: journal fsync.
    StoreFlush,
    /// Persistent report store: snapshot compaction.
    StoreCompact,
    /// Persistent report store: startup recovery scan.
    StoreRecover,
}

impl Seam {
    /// Every governed seam, in pipeline order (the persistence seams
    /// follow the analysis seams: they sit behind the result cache).
    pub const ALL: [Seam; 10] = [
        Seam::Admission,
        Seam::Instances,
        Seam::CdagFill,
        Seam::LruPass,
        Seam::OptPass,
        Seam::Tuner,
        Seam::StoreAppend,
        Seam::StoreFlush,
        Seam::StoreCompact,
        Seam::StoreRecover,
    ];

    /// Stable name used by `--inject CLASS@SEAM` and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Seam::Admission => "admission",
            Seam::Instances => "instances",
            Seam::CdagFill => "cdag_fill",
            Seam::LruPass => "lru_pass",
            Seam::OptPass => "opt_pass",
            Seam::Tuner => "tuner",
            Seam::StoreAppend => "store_append",
            Seam::StoreFlush => "store_flush",
            Seam::StoreCompact => "store_compact",
            Seam::StoreRecover => "store_recover",
        }
    }

    /// Parses a seam name.
    pub fn parse(s: &str) -> Option<Seam> {
        Seam::ALL.iter().copied().find(|x| x.as_str() == s)
    }
}

impl fmt::Display for Seam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fault class fired by the injection harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the seam — must be caught at the isolation boundary
    /// and surface as [`AnalysisError::Internal`].
    Panic,
    /// Simulated allocation failure — surfaces as
    /// [`AnalysisError::BudgetExceeded`] with resource `"injected_oom"`.
    Oom,
    /// Simulated deadline expiry — surfaces as
    /// [`AnalysisError::Deadline`].
    Deadline,
}

impl FaultKind {
    /// Every injectable fault class.
    pub const ALL: [FaultKind; 3] = [FaultKind::Panic, FaultKind::Oom, FaultKind::Deadline];

    /// Stable name used by `--inject`.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Oom => "oom",
            FaultKind::Deadline => "deadline",
        }
    }

    /// Parses a fault-class name.
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|x| x.as_str() == s)
    }

    /// The error class this fault must surface as when governed.
    pub fn expected_class(&self) -> &'static str {
        match self {
            FaultKind::Panic => "internal",
            FaultKind::Oom => "budget",
            FaultKind::Deadline => "deadline",
        }
    }
}

/// A deterministic fault: fire `kind` on the first token check at `seam`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to fire.
    pub kind: FaultKind,
    /// Where to fire it.
    pub seam: Seam,
}

impl Fault {
    /// Parses `CLASS@SEAM` (e.g. `panic@lru_pass`); a bare `CLASS` means
    /// the earliest seam, `admission`.
    pub fn parse(s: &str) -> Option<Fault> {
        let (kind, seam) = match s.split_once('@') {
            Some((k, at)) => (FaultKind::parse(k)?, Seam::parse(at)?),
            None => (FaultKind::parse(s)?, Seam::Admission),
        };
        Some(Fault { kind, seam })
    }
}

#[derive(Debug)]
struct TokenInner {
    deadline: Option<Instant>,
    deadline_ms: u64,
    flag: AtomicBool,
    fault: Option<Fault>,
    fault_armed: AtomicBool,
    /// When nonzero, trip `Cancelled` once this many checks have run —
    /// the deterministic handle the bounded-iteration tests use.
    trip_after: u64,
    checks: AtomicU64,
}

/// Cooperative cancellation token: deadline + external flag + injected
/// fault, polled by every governed hot loop via [`CancelToken::check`].
///
/// Cloning is cheap (an `Arc`); clones share the flag, so cancelling any
/// clone cancels all holders.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::unlimited()
    }
}

impl CancelToken {
    fn build(deadline: Option<Duration>, fault: Option<Fault>, trip_after: u64) -> CancelToken {
        let deadline_ms = deadline.map(|d| d.as_millis() as u64).unwrap_or(0);
        CancelToken {
            inner: Arc::new(TokenInner {
                deadline: deadline.map(|d| Instant::now() + d),
                deadline_ms,
                flag: AtomicBool::new(false),
                fault,
                fault_armed: AtomicBool::new(fault.is_some()),
                trip_after,
                checks: AtomicU64::new(0),
            }),
        }
    }

    /// A token that never cancels (no deadline, no fault).
    pub fn unlimited() -> CancelToken {
        CancelToken::build(None, None, 0)
    }

    /// A token whose checks fail with [`AnalysisError::Deadline`] once
    /// `limit` wall-clock time has passed.
    pub fn with_deadline(limit: Duration) -> CancelToken {
        CancelToken::build(Some(limit), None, 0)
    }

    /// A token that fires `fault` on the first check at the fault's seam.
    pub fn with_fault(fault: Fault) -> CancelToken {
        CancelToken::build(None, Some(fault), 0)
    }

    /// A token whose `n`-th check (1-based, any seam) fails with
    /// [`AnalysisError::Cancelled`] — deterministic mid-pass cancellation
    /// for tests, independent of wall-clock speed.
    pub fn trip_after_checks(n: u64) -> CancelToken {
        CancelToken::build(None, None, n)
    }

    /// Flips the external cancel flag; every subsequent check on any
    /// clone fails with [`AnalysisError::Cancelled`].
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Total checks run so far (all seams); tests use this to bound the
    /// number of iterations between a trip and the typed error.
    pub fn checks_seen(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// Polls the token at `seam`. Ok to call at any frequency: the cost
    /// is two relaxed atomic ops plus, when a deadline is set, an
    /// `Instant::now()`.
    pub fn check(&self, seam: Seam) -> Result<(), AnalysisError> {
        let inner = &*self.inner;
        let n = inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(fault) = inner.fault {
            if fault.seam == seam && inner.fault_armed.swap(false, Ordering::AcqRel) {
                match fault.kind {
                    FaultKind::Panic => panic!("injected panic at seam {seam}"),
                    FaultKind::Oom => {
                        return Err(AnalysisError::BudgetExceeded {
                            resource: "injected_oom",
                            needed: u64::MAX,
                            limit: 0,
                        })
                    }
                    FaultKind::Deadline => return Err(AnalysisError::Deadline { limit_ms: 0 }),
                }
            }
        }
        if inner.trip_after != 0 && n >= inner.trip_after {
            return Err(AnalysisError::Cancelled);
        }
        if inner.flag.load(Ordering::Acquire) {
            return Err(AnalysisError::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(AnalysisError::Deadline {
                    limit_ms: inner.deadline_ms,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_and_distinct() {
        let errs = [
            AnalysisError::Parse("x".into()),
            AnalysisError::Refused("x".into()),
            AnalysisError::BudgetExceeded {
                resource: "instances",
                needed: 9,
                limit: 1,
            },
            AnalysisError::Deadline { limit_ms: 5 },
            AnalysisError::Cancelled,
            AnalysisError::Internal("x".into()),
        ];
        let codes: Vec<u8> = errs.iter().map(|e| e.exit_code()).collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 7]);
        for e in &errs {
            assert!(!e.class_name().is_empty());
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn estimate_check_reports_first_violation() {
        let est = CostEstimate {
            instances: 100,
            trace_len: 300,
            cdag_nodes: 120,
            cdag_edges: 200,
            arena_bytes: 4000,
        };
        let mut b = Budget::unlimited();
        assert_eq!(est.check(&b), Ok(()));
        b.max_cdag_edges = 150;
        assert_eq!(
            est.check(&b),
            Err(AnalysisError::BudgetExceeded {
                resource: "cdag_edges",
                needed: 200,
                limit: 150,
            })
        );
    }

    #[test]
    fn degradation_ladder() {
        let est = CostEstimate {
            trace_len: 1000,
            ..CostEstimate::default()
        };
        let mut b = Budget::unlimited();
        assert_eq!(est.degradation(&b, 32, 5), Degradation::Full);
        b.max_work = 10_000; // fits 5-point, not 32-point
        assert_eq!(est.degradation(&b, 32, 5), Degradation::Coarse);
        b.max_work = 100; // fits nothing
        assert_eq!(est.degradation(&b, 32, 5), Degradation::BoundsOnly);
        for d in [
            Degradation::Full,
            Degradation::Coarse,
            Degradation::BoundsOnly,
        ] {
            assert_eq!(Degradation::parse(d.as_str()), Some(d));
        }
    }

    #[test]
    fn token_flag_and_trip() {
        let t = CancelToken::unlimited();
        assert_eq!(t.check(Seam::Instances), Ok(()));
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.check(Seam::Instances), Err(AnalysisError::Cancelled));

        let t = CancelToken::trip_after_checks(3);
        assert_eq!(t.check(Seam::LruPass), Ok(()));
        assert_eq!(t.check(Seam::LruPass), Ok(()));
        assert_eq!(t.check(Seam::LruPass), Err(AnalysisError::Cancelled));
        assert_eq!(t.checks_seen(), 3);
    }

    #[test]
    fn token_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            t.check(Seam::OptPass),
            Err(AnalysisError::Deadline { limit_ms: 0 })
        );
        let slow = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(slow.check(Seam::OptPass), Ok(()));
    }

    #[test]
    fn token_fault_fires_once_at_matching_seam_only() {
        let t = CancelToken::with_fault(Fault {
            kind: FaultKind::Oom,
            seam: Seam::CdagFill,
        });
        assert_eq!(t.check(Seam::Instances), Ok(()));
        let err = t.check(Seam::CdagFill).unwrap_err();
        assert_eq!(err.class_name(), "budget");
        // One-shot: the pipeline continues past the fault afterwards.
        assert_eq!(t.check(Seam::CdagFill), Ok(()));
    }

    #[test]
    fn injected_panic_is_caught_as_internal() {
        let t = CancelToken::with_fault(Fault {
            kind: FaultKind::Panic,
            seam: Seam::LruPass,
        });
        let result = catch_analysis(move || t.check(Seam::LruPass));
        match result {
            Err(AnalysisError::Internal(msg)) => assert!(msg.contains("injected panic")),
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn fault_parse_roundtrip() {
        for kind in FaultKind::ALL {
            for seam in Seam::ALL {
                let s = format!("{}@{}", kind.as_str(), seam.as_str());
                assert_eq!(Fault::parse(&s), Some(Fault { kind, seam }));
            }
        }
        assert_eq!(
            Fault::parse("panic"),
            Some(Fault {
                kind: FaultKind::Panic,
                seam: Seam::Admission
            })
        );
        assert_eq!(Fault::parse("bogus@tuner"), None);
        assert_eq!(Fault::parse("panic@bogus"), None);
    }

    #[test]
    fn budget_token_carries_deadline() {
        let mut b = Budget::unlimited();
        assert!(!b.is_limited());
        b.deadline_ms = 3_600_000;
        assert!(b.is_limited());
        let t = b.token();
        assert_eq!(t.check(Seam::Admission), Ok(()));
    }
}
