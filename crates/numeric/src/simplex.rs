//! Exact two-phase simplex over rationals, with Bland's anti-cycling rule.
//!
//! The Brascamp–Lieb exponent optimization of the K-partitioning method is a
//! tiny linear program (one variable per dependence projection, one covering
//! constraint per iteration-space dimension), but its optimum must be *exact*:
//! the exponent `σ = Σ_j s_j` appears in the final bound `Q = Ω(|V|/S^{σ-1})`
//! and a floating-point `1.4999…` instead of `3/2` would corrupt every
//! derived formula. Problems here have < 20 variables, so a dense rational
//! tableau is both simple and fast.

use crate::rational::Rational;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// Comparison operator of a linear constraint `a·x ⋈ b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// A linear program over non-negative variables `x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n: usize,
    objective: Vec<Rational>,
    direction: Objective,
    constraints: Vec<(Vec<Rational>, Cmp, Rational)>,
}

/// Result of solving a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Objective value at the optimum.
        value: Rational,
        /// Optimal assignment of the original variables.
        x: Vec<Rational>,
    },
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

impl LpOutcome {
    /// Unwraps the optimal solution.
    ///
    /// # Panics
    /// Panics when the outcome is not [`LpOutcome::Optimal`].
    pub fn unwrap_optimal(self) -> (Rational, Vec<Rational>) {
        match self {
            LpOutcome::Optimal { value, x } => (value, x),
            other => panic!("expected optimal LP outcome, got {other:?}"),
        }
    }
}

impl LinearProgram {
    /// Creates an LP over `n` non-negative variables with the given objective.
    pub fn new(n: usize, objective: Vec<Rational>, direction: Objective) -> LinearProgram {
        assert_eq!(objective.len(), n, "objective length mismatch");
        LinearProgram {
            n,
            objective,
            direction,
            constraints: Vec::new(),
        }
    }

    /// Adds the constraint `coeffs · x ⋈ rhs`.
    pub fn constrain(&mut self, coeffs: Vec<Rational>, cmp: Cmp, rhs: Rational) -> &mut Self {
        assert_eq!(coeffs.len(), self.n, "constraint length mismatch");
        self.constraints.push((coeffs, cmp, rhs));
        self
    }

    /// Adds `x_i ≤ ub` for every variable.
    pub fn upper_bound_all(&mut self, ub: Rational) -> &mut Self {
        for i in 0..self.n {
            let mut c = vec![Rational::ZERO; self.n];
            c[i] = Rational::ONE;
            self.constraints.push((c, Cmp::Le, ub));
        }
        self
    }

    /// Solves the program exactly.
    pub fn solve(&self) -> LpOutcome {
        let m = self.constraints.len();
        // Normalize to b >= 0.
        let mut rows: Vec<(Vec<Rational>, Cmp, Rational)> = self.constraints.clone();
        for (coeffs, cmp, rhs) in rows.iter_mut() {
            if rhs.is_negative() {
                for c in coeffs.iter_mut() {
                    *c = -*c;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Eq => Cmp::Eq,
                    Cmp::Ge => Cmp::Le,
                };
            }
        }

        // Column layout: [x (n)] [slack/surplus (one per Le/Ge)] [artificial].
        let n_slack = rows
            .iter()
            .filter(|(_, cmp, _)| matches!(cmp, Cmp::Le | Cmp::Ge))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, cmp, _)| matches!(cmp, Cmp::Eq | Cmp::Ge))
            .count();
        let total = self.n + n_slack + n_art;

        let mut tab = vec![vec![Rational::ZERO; total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_at = self.n;
        let mut art_at = self.n + n_slack;
        let mut art_cols = Vec::with_capacity(n_art);

        for (i, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
            for (j, &c) in coeffs.iter().enumerate() {
                tab[i][j] = c;
            }
            tab[i][total] = *rhs;
            match cmp {
                Cmp::Le => {
                    tab[i][slack_at] = Rational::ONE;
                    basis[i] = slack_at;
                    slack_at += 1;
                }
                Cmp::Ge => {
                    tab[i][slack_at] = -Rational::ONE;
                    slack_at += 1;
                    tab[i][art_at] = Rational::ONE;
                    basis[i] = art_at;
                    art_cols.push(art_at);
                    art_at += 1;
                }
                Cmp::Eq => {
                    tab[i][art_at] = Rational::ONE;
                    basis[i] = art_at;
                    art_cols.push(art_at);
                    art_at += 1;
                }
            }
        }

        // Phase 1: minimize sum of artificial variables.
        if !art_cols.is_empty() {
            let mut cost1 = vec![Rational::ZERO; total];
            for &a in &art_cols {
                cost1[a] = Rational::ONE;
            }
            if run_simplex(&mut tab, &mut basis, &cost1).is_err() {
                // Phase 1 objective is bounded below by 0; unbounded impossible.
                unreachable!("phase-1 simplex cannot be unbounded");
            }
            let phase1: Rational = (0..m)
                .map(|i| {
                    if cost1[basis[i]].is_one() {
                        tab[i][total]
                    } else {
                        Rational::ZERO
                    }
                })
                .sum();
            if !phase1.is_zero() {
                return LpOutcome::Infeasible;
            }
            // Drive remaining degenerate artificials out of the basis.
            for i in 0..m {
                if art_cols.contains(&basis[i]) {
                    let pivot_col = (0..self.n + n_slack).find(|&j| !tab[i][j].is_zero());
                    if let Some(j) = pivot_col {
                        pivot(&mut tab, &mut basis, i, j);
                    }
                    // Otherwise the row is all-zero (redundant) and stays put;
                    // its artificial is basic at value 0 and harmless.
                }
            }
            // Freeze artificial columns at zero for phase 2.
            for row in tab.iter_mut() {
                for &a in &art_cols {
                    row[a] = Rational::ZERO;
                }
            }
        }

        // Phase 2: the real objective (internally always minimize).
        let mut cost2 = vec![Rational::ZERO; total];
        for (slot, &obj) in cost2.iter_mut().zip(&self.objective) {
            *slot = match self.direction {
                Objective::Minimize => obj,
                Objective::Maximize => -obj,
            };
        }
        if run_simplex(&mut tab, &mut basis, &cost2).is_err() {
            return LpOutcome::Unbounded;
        }

        let mut x = vec![Rational::ZERO; self.n];
        for i in 0..m {
            if basis[i] < self.n {
                x[basis[i]] = tab[i][total];
            }
        }
        let mut value: Rational = (0..self.n).map(|j| self.objective[j] * x[j]).sum();
        if self.direction == Objective::Maximize {
            // objective vector was used as-is to compute value; nothing to flip
        }
        // `value` already uses the caller's objective, so no sign fixup needed.
        let _ = &mut value;
        LpOutcome::Optimal { value, x }
    }
}

/// Runs the simplex loop with Bland's rule on a canonical tableau.
///
/// Returns `Err(())` when the problem is unbounded for the given costs.
fn run_simplex(
    tab: &mut [Vec<Rational>],
    basis: &mut [usize],
    cost: &[Rational],
) -> Result<(), ()> {
    let m = tab.len();
    if m == 0 {
        return Ok(());
    }
    let total = cost.len();
    loop {
        // Reduced costs r_j = c_j - Σ_i c_{B(i)} T[i][j]; entering = smallest
        // index with r_j < 0 (Bland).
        let mut entering = None;
        for j in 0..total {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                if !cost[basis[i]].is_zero() && !tab[i][j].is_zero() {
                    r -= cost[basis[i]] * tab[i][j];
                }
            }
            if r.is_negative() {
                entering = Some(j);
                break;
            }
        }
        let Some(j) = entering else {
            return Ok(());
        };
        // Ratio test; Bland tie-break on the basis variable index.
        let mut leave: Option<(usize, Rational)> = None;
        for i in 0..m {
            if tab[i][j].is_positive() {
                let ratio = tab[i][total] / tab[i][j];
                match &leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < *lr || (ratio == *lr && basis[i] < basis[*li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((i, _)) = leave else {
            return Err(());
        };
        pivot(tab, basis, i, j);
    }
}

/// Pivots the tableau on `(row, col)`, making `col` basic in `row`.
fn pivot(tab: &mut [Vec<Rational>], basis: &mut [usize], row: usize, col: usize) {
    let inv = tab[row][col].recip();
    for v in tab[row].iter_mut() {
        *v *= inv;
    }
    let pivot_row = tab[row].clone();
    for (i, r) in tab.iter_mut().enumerate() {
        if i != row && !r[col].is_zero() {
            let f = r[col];
            for (v, p) in r.iter_mut().zip(pivot_row.iter()) {
                *v -= f * *p;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    fn r(n: i128) -> Rational {
        Rational::int(n)
    }

    #[test]
    fn simple_maximize() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6 → x=8/5, y=6/5, value 14/5.
        let mut lp = LinearProgram::new(2, vec![r(1), r(1)], Objective::Maximize);
        lp.constrain(vec![r(1), r(2)], Cmp::Le, r(4));
        lp.constrain(vec![r(3), r(1)], Cmp::Le, r(6));
        let (v, x) = lp.solve().unwrap_optimal();
        assert_eq!(v, rat(14, 5));
        assert_eq!(x, vec![rat(8, 5), rat(6, 5)]);
    }

    #[test]
    fn minimize_with_ge() {
        // min x + y s.t. x + y >= 3, x >= 1 → value 3.
        let mut lp = LinearProgram::new(2, vec![r(1), r(1)], Objective::Minimize);
        lp.constrain(vec![r(1), r(1)], Cmp::Ge, r(3));
        lp.constrain(vec![r(1), r(0)], Cmp::Ge, r(1));
        let (v, _) = lp.solve().unwrap_optimal();
        assert_eq!(v, r(3));
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 5, x - y = 1 → x=3, y=2, value 12.
        let mut lp = LinearProgram::new(2, vec![r(2), r(3)], Objective::Minimize);
        lp.constrain(vec![r(1), r(1)], Cmp::Eq, r(5));
        lp.constrain(vec![r(1), r(-1)], Cmp::Eq, r(1));
        let (v, x) = lp.solve().unwrap_optimal();
        assert_eq!(x, vec![r(3), r(2)]);
        assert_eq!(v, r(12));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1, vec![r(1)], Objective::Minimize);
        lp.constrain(vec![r(1)], Cmp::Ge, r(5));
        lp.constrain(vec![r(1)], Cmp::Le, r(3));
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(1, vec![r(1)], Objective::Maximize);
        lp.constrain(vec![r(-1)], Cmp::Le, r(0));
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // min y s.t. -x - y <= -3 (i.e. x + y >= 3), x <= 2 → y = 1.
        let mut lp = LinearProgram::new(2, vec![r(0), r(1)], Objective::Minimize);
        lp.constrain(vec![r(-1), r(-1)], Cmp::Le, r(-3));
        lp.constrain(vec![r(1), r(0)], Cmp::Le, r(2));
        let (v, _) = lp.solve().unwrap_optimal();
        assert_eq!(v, r(1));
    }

    /// The Brascamp–Lieb exponent LP for MGS (paper §4): projections
    /// {i,j}, {i,k}, {k,j} over dims {i,j,k}; minimize Σ s_j subject to the
    /// dimension-covering constraints. Optimum is s = (1/2, 1/2, 1/2), σ=3/2.
    #[test]
    fn brascamp_lieb_mgs_exponents() {
        let mut lp = LinearProgram::new(3, vec![r(1), r(1), r(1)], Objective::Minimize);
        // dim i covered by projections 0 ({i,j}) and 1 ({i,k})
        lp.constrain(vec![r(1), r(1), r(0)], Cmp::Ge, r(1));
        // dim j covered by projections 0 and 2
        lp.constrain(vec![r(1), r(0), r(1)], Cmp::Ge, r(1));
        // dim k covered by projections 1 and 2
        lp.constrain(vec![r(0), r(1), r(1)], Cmp::Ge, r(1));
        lp.upper_bound_all(r(1));
        let (v, x) = lp.solve().unwrap_optimal();
        assert_eq!(v, rat(3, 2));
        assert_eq!(x, vec![rat(1, 2), rat(1, 2), rat(1, 2)]);
    }

    /// GEMM-style: projections {i,j}, {i,k}, {j,k} — same LP, σ = 3/2
    /// (the classical Loomis–Whitney / Irony-Toledo-Tiskin exponent).
    /// 1-D projections {i},{j},{k} instead give σ = 3.
    #[test]
    fn one_dimensional_projections() {
        let mut lp = LinearProgram::new(3, vec![r(1), r(1), r(1)], Objective::Minimize);
        lp.constrain(vec![r(1), r(0), r(0)], Cmp::Ge, r(1));
        lp.constrain(vec![r(0), r(1), r(0)], Cmp::Ge, r(1));
        lp.constrain(vec![r(0), r(0), r(1)], Cmp::Ge, r(1));
        lp.upper_bound_all(r(1));
        let (v, _) = lp.solve().unwrap_optimal();
        assert_eq!(v, r(3));
    }

    /// Degenerate LP that would cycle without Bland's rule (Beale's example
    /// shape); we only check it terminates with the right optimum.
    #[test]
    fn beale_degenerate_terminates() {
        let c = vec![rat(-3, 4), r(150), rat(-1, 50), r(6)];
        let mut lp = LinearProgram::new(4, c, Objective::Minimize);
        lp.constrain(vec![rat(1, 4), r(-60), rat(-1, 25), r(9)], Cmp::Le, r(0));
        lp.constrain(vec![rat(1, 2), r(-90), rat(-1, 50), r(3)], Cmp::Le, r(0));
        lp.constrain(vec![r(0), r(0), r(1), r(0)], Cmp::Le, r(1));
        let (v, _) = lp.solve().unwrap_optimal();
        assert_eq!(v, rat(-1, 20));
    }

    mod brute_force {
        use super::*;

        /// Enumerates all basic solutions of `min c·x, Ax ⋈ b, x ≥ 0` by
        /// intersecting every n-subset of the hyperplanes (constraint
        /// boundaries + axes) and keeping the feasible ones.
        fn brute_force_min(
            lp_n: usize,
            c: &[Rational],
            cons: &[(Vec<Rational>, Cmp, Rational)],
        ) -> Option<Rational> {
            use crate::matrix::QMatrix;
            let mut planes: Vec<(Vec<Rational>, Rational)> = Vec::new();
            for (a, _, b) in cons {
                planes.push((a.clone(), *b));
            }
            for i in 0..lp_n {
                let mut a = vec![Rational::ZERO; lp_n];
                a[i] = Rational::ONE;
                planes.push((a, Rational::ZERO));
            }
            let idx: Vec<usize> = (0..planes.len()).collect();
            let mut best: Option<Rational> = None;
            // all n-subsets
            let mut comb: Vec<usize> = (0..lp_n).collect();
            loop {
                let mut m = QMatrix::zeros(0, 0);
                let mut b = Vec::new();
                for &i in &comb {
                    m.push_row(&planes[i].0);
                    b.push(planes[i].1);
                }
                if let Some(x) = m.solve(&b) {
                    let feasible = x.iter().all(|v| !v.is_negative())
                        && cons.iter().all(|(a, cmp, rhs)| {
                            let lhs: Rational = a.iter().zip(&x).map(|(ai, xi)| *ai * *xi).sum();
                            match cmp {
                                Cmp::Le => lhs <= *rhs,
                                Cmp::Eq => lhs == *rhs,
                                Cmp::Ge => lhs >= *rhs,
                            }
                        });
                    if feasible {
                        let val: Rational = c.iter().zip(&x).map(|(ci, xi)| *ci * *xi).sum();
                        best = Some(match best {
                            None => val,
                            Some(b0) => b0.min(val),
                        });
                    }
                }
                // next combination
                let mut i = lp_n;
                loop {
                    if i == 0 {
                        return best;
                    }
                    i -= 1;
                    if comb[i] != idx.len() - lp_n + i {
                        comb[i] += 1;
                        for j in i + 1..lp_n {
                            comb[j] = comb[j - 1] + 1;
                        }
                        break;
                    }
                }
            }
        }

        /// Simplex agrees with brute-force vertex enumeration on random
        /// bounded covering LPs (the exact family used for BL exponents).
        #[test]
        fn simplex_matches_vertex_enumeration() {
            use rand::prelude::*;
            let mut rng = StdRng::seed_from_u64(0xB1A);
            for _ in 0..40 {
                let n = rng.gen_range(2..=4usize);
                let m = rng.gen_range(1..=3usize);
                let c: Vec<Rational> = (0..n).map(|_| Rational::int(rng.gen_range(1..5))).collect();
                let mut cons = Vec::new();
                for _ in 0..m {
                    let a: Vec<Rational> =
                        (0..n).map(|_| Rational::int(rng.gen_range(0..3))).collect();
                    if a.iter().all(|v| v.is_zero()) {
                        continue;
                    }
                    cons.push((a, Cmp::Ge, Rational::ONE));
                }
                // Upper bounds keep it bounded.
                for i in 0..n {
                    let mut a = vec![Rational::ZERO; n];
                    a[i] = Rational::ONE;
                    cons.push((a, Cmp::Le, Rational::ONE));
                }
                let mut lp = LinearProgram::new(n, c.clone(), Objective::Minimize);
                for (a, cmp, b) in &cons {
                    lp.constrain(a.clone(), *cmp, *b);
                }
                match lp.solve() {
                    LpOutcome::Optimal { value, .. } => {
                        let bf = brute_force_min(n, &c, &cons).expect("brute force feasible");
                        assert_eq!(value, bf);
                    }
                    LpOutcome::Infeasible => {
                        assert!(brute_force_min(n, &c, &cons).is_none());
                    }
                    LpOutcome::Unbounded => panic!("bounded by construction"),
                }
            }
        }
    }
}
