//! Exact numeric foundations for the hourglass-iolb workspace.
//!
//! I/O lower-bound derivation manipulates *exact* quantities: Brascamp–Lieb
//! exponents are rational numbers produced by a linear program, Faulhaber
//! summation needs Bernoulli-style rational coefficients, and the subgroup
//! rank conditions of the Brascamp–Lieb theorem need exact linear algebra.
//! Floating point would silently destroy tightness proofs, so this crate
//! provides:
//!
//! * [`Rational`] — exact rationals over `i128` with overflow-checked
//!   arithmetic (the derivations in this workspace stay far below the
//!   overflow range; overflow panics loudly instead of corrupting a bound),
//! * [`QMatrix`] — dense matrices over `Rational` with Gaussian elimination,
//!   rank and solving (used for the subgroup rank checks),
//! * [`simplex`] — an exact two-phase simplex solver with Bland's rule,
//!   used to optimize Brascamp–Lieb exponents.

pub mod matrix;
pub mod rational;
pub mod simplex;

pub use matrix::QMatrix;
pub use rational::Rational;
pub use simplex::{LinearProgram, LpOutcome, Objective};

/// Greatest common divisor of two `i128`s (absolute values).
///
/// `gcd(0, 0) == 0` by convention.
pub fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor for `i64` (convenience for IR coefficients).
pub fn gcd_i64(a: i64, b: i64) -> i64 {
    gcd_i128(a as i128, b as i128) as i64
}

/// Exact binomial coefficient `C(n, k)` as `i128`.
///
/// Panics on overflow; the Faulhaber machinery only needs small `n`.
pub fn binomial(n: u32, k: u32) -> i128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: i128 = 1;
    for i in 0..k {
        num = num.checked_mul((n - i) as i128).expect("binomial overflow");
        num /= (i + 1) as i128; // exact: product of j consecutive ints divisible by j!
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd_i128(0, 0), 0);
        assert_eq!(gcd_i128(0, 7), 7);
        assert_eq!(gcd_i128(12, 18), 6);
        assert_eq!(gcd_i128(-12, 18), 6);
        assert_eq!(gcd_i128(17, 5), 1);
    }

    #[test]
    fn binomial_small() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(10, 11), 0);
        assert_eq!(binomial(20, 10), 184_756);
    }

    #[test]
    fn binomial_row_sums() {
        for n in 0..30u32 {
            let sum: i128 = (0..=n).map(|k| binomial(n, k)).sum();
            assert_eq!(sum, 1i128 << n);
        }
    }
}
