//! Dense matrices over [`Rational`] with exact Gaussian elimination.
//!
//! The Brascamp–Lieb theorem (Theorem 2 of the paper) constrains exponents
//! through *subgroup rank* conditions `rank(H) ≤ Σ_j s_j · rank(φ_j(H))`.
//! Verifying those conditions requires exact ranks of integer matrices,
//! which Gaussian elimination over `Q` provides.

use crate::rational::Rational;
use std::fmt;

/// A dense row-major matrix over exact rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct QMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl QMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> QMatrix {
        QMatrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> QMatrix {
        let mut m = QMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// Builds a matrix from integer row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows_i64(rows: &[&[i64]]) -> QMatrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = QMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged matrix rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = Rational::int(v as i128);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Extracts row `i` as a slice.
    pub fn row(&self, i: usize) -> &[Rational] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    /// Panics if `row.len() != self.cols()` (unless the matrix is empty).
    pub fn push_row(&mut self, row: &[Rational]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matmul(&self, other: &QMatrix) -> QMatrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = QMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..other.cols {
                    let t = out[(i, j)] + a * other[(k, j)];
                    out[(i, j)] = t;
                }
            }
        }
        out
    }

    /// Rank via exact Gaussian elimination (destructive on a copy).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.row_echelon().len()
    }

    /// Reduces `self` in place to row-echelon form; returns pivot columns.
    pub fn row_echelon(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..self.cols {
            if r == self.rows {
                break;
            }
            // Find a pivot row.
            let Some(p) = (r..self.rows).find(|&i| !self[(i, c)].is_zero()) else {
                continue;
            };
            self.swap_rows(r, p);
            let inv = self[(r, c)].recip();
            for j in c..self.cols {
                let t = self[(r, j)] * inv;
                self[(r, j)] = t;
            }
            for i in 0..self.rows {
                if i != r && !self[(i, c)].is_zero() {
                    let f = self[(i, c)];
                    for j in c..self.cols {
                        let t = self[(i, j)] - f * self[(r, j)];
                        self[(i, j)] = t;
                    }
                }
            }
            pivots.push(c);
            r += 1;
        }
        pivots
    }

    /// Solves `self * x = b` if a solution exists (least structure: any
    /// particular solution; free variables are set to zero).
    pub fn solve(&self, b: &[Rational]) -> Option<Vec<Rational>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let mut aug = QMatrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            for j in 0..self.cols {
                aug[(i, j)] = self[(i, j)];
            }
            aug[(i, self.cols)] = b[i];
        }
        let pivots = aug.row_echelon();
        // Inconsistent if a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = vec![Rational::ZERO; self.cols];
        for (r, &c) in pivots.iter().enumerate() {
            x[c] = aug[(r, self.cols)];
        }
        Some(x)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }
}

impl std::ops::Index<(usize, usize)> for QMatrix {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for QMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for QMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;
    use proptest::prelude::*;

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(QMatrix::identity(4).rank(), 4);
        assert_eq!(QMatrix::zeros(3, 5).rank(), 0);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = QMatrix::from_rows_i64(&[&[1, 2, 3], &[2, 4, 6], &[0, 1, 1]]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rank_of_projections() {
        // Coordinate projection (i,j,k) -> (i,j) has rank 2.
        let m = QMatrix::from_rows_i64(&[&[1, 0, 0], &[0, 1, 0]]);
        assert_eq!(m.rank(), 2);
        // Projection composed with translation-killed dim: (i,j,k) -> (i+k, j).
        let m = QMatrix::from_rows_i64(&[&[1, 0, 1], &[0, 1, 0]]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn solve_unique() {
        let m = QMatrix::from_rows_i64(&[&[2, 1], &[1, 3]]);
        let x = m.solve(&[rat(5, 1), rat(10, 1)]).unwrap();
        assert_eq!(m.matmul(&col(&x)), col(&[rat(5, 1), rat(10, 1)]));
        assert_eq!(x, vec![Rational::ONE, rat(3, 1)]);
    }

    #[test]
    fn solve_inconsistent() {
        let m = QMatrix::from_rows_i64(&[&[1, 1], &[1, 1]]);
        assert!(m.solve(&[Rational::ONE, Rational::TWO]).is_none());
    }

    #[test]
    fn solve_underdetermined() {
        let m = QMatrix::from_rows_i64(&[&[1, 1, 0]]);
        let x = m.solve(&[rat(3, 1)]).unwrap();
        let r: Rational = x[0] + x[1];
        assert_eq!(r, rat(3, 1));
    }

    fn col(v: &[Rational]) -> QMatrix {
        let mut m = QMatrix::zeros(v.len(), 1);
        for (i, &x) in v.iter().enumerate() {
            m[(i, 0)] = x;
        }
        m
    }

    proptest! {
        #[test]
        fn rank_bounded_and_transpose_free_product(
            vals in proptest::collection::vec(-5i64..=5, 12)
        ) {
            let rows: Vec<&[i64]> = vals.chunks(4).collect();
            let m = QMatrix::from_rows_i64(&rows);
            let r = m.rank();
            prop_assert!(r <= 3, "rank of a 3x4 matrix");
            // rank(A*A) <= rank(A) for square-able shapes is not applicable;
            // instead check rank invariance under row scaling.
            let mut scaled = m.clone();
            for j in 0..scaled.cols() {
                let t = scaled[(0, j)] * rat(3, 2);
                scaled[(0, j)] = t;
            }
            prop_assert_eq!(scaled.rank(), r);
        }

        #[test]
        fn solve_satisfies_system(
            vals in proptest::collection::vec(-4i64..=4, 9),
            xs in proptest::collection::vec(-4i64..=4, 3)
        ) {
            let rows: Vec<&[i64]> = vals.chunks(3).collect();
            let m = QMatrix::from_rows_i64(&rows);
            // Build b = m * x_true so the system is consistent by construction.
            let xt: Vec<Rational> = xs.iter().map(|&v| Rational::int(v as i128)).collect();
            let b: Vec<Rational> = (0..3)
                .map(|i| (0..3).map(|j| m[(i, j)] * xt[j]).sum())
                .collect();
            let x = m.solve(&b).expect("consistent by construction");
            for i in 0..3 {
                let lhs: Rational = (0..3).map(|j| m[(i, j)] * x[j]).sum();
                prop_assert_eq!(lhs, b[i]);
            }
        }
    }
}
