//! Exact rational arithmetic over `i128`.
//!
//! Every value is kept in canonical form: `den > 0` and `gcd(num, den) == 1`.
//! All arithmetic is overflow-checked; an overflow is a hard logic error in
//! this workspace (bounds must never silently wrap), so it panics.

use crate::gcd_i128;
use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0`, reduced.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational 0/1.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational 1/1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };
    /// The rational 2/1.
    pub const TWO: Rational = Rational { num: 2, den: 1 };

    /// Builds `num / den`, reducing to canonical form.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den < 0 {
            num = num.checked_neg().expect("rational overflow (neg)");
            den = den.checked_neg().expect("rational overflow (neg)");
        }
        let g = gcd_i128(num, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Rational { num, den }
    }

    /// Builds the integer rational `n / 1`.
    pub const fn int(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// Numerator (canonical sign).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True iff the value is negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// True iff the value is positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.checked_abs().expect("rational overflow (abs)"),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Exact integer power (negative exponents via [`Rational::recip`]).
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::ONE;
        }
        let base = if exp < 0 { self.recip() } else { *self };
        let mut acc = Rational::ONE;
        for _ in 0..exp.unsigned_abs() {
            acc *= base;
        }
        acc
    }

    /// Floor to the nearest integer toward negative infinity.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Ceiling to the nearest integer toward positive infinity.
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// Lossy conversion to `f64` (display / plotting only, never proofs).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact integer value.
    ///
    /// # Panics
    /// Panics when the value is not an integer.
    pub fn to_integer(&self) -> i128 {
        assert!(self.den == 1, "rational {self} is not an integer");
        self.num
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::int(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::int(n as i128)
    }
}

impl From<usize> for Rational {
    fn from(n: usize) -> Self {
        Rational::int(n as i128)
    }
}

fn cmul(a: i128, b: i128) -> i128 {
    a.checked_mul(b).expect("rational overflow (mul)")
}

fn cadd(a: i128, b: i128) -> i128 {
    a.checked_add(b).expect("rational overflow (add)")
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Reduce cross terms by gcd of denominators first to delay overflow.
        let g = gcd_i128(self.den, rhs.den);
        let (da, db) = (self.den / g, rhs.den / g);
        let num = cadd(cmul(self.num, db), cmul(rhs.num, da));
        let den = cmul(self.den, db);
        Rational::new(num, den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd_i128(self.num, rhs.den);
        let g2 = gcd_i128(rhs.num, self.den);
        let num = cmul(self.num / g1, rhs.num / g2);
        let den = cmul(self.den / g2, rhs.den / g1);
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division via the multiplicative inverse is the intended arithmetic.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: self.num.checked_neg().expect("rational overflow (neg)"),
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |a, b| a + b)
    }
}

impl Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ONE, |a, b| a * b)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        cmul(self.num, other.den).cmp(&cmul(other.num, self.den))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error from parsing a [`Rational`] out of a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a"` or `"a/b"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseRationalError(s.to_string());
        match s.split_once('/') {
            None => s
                .trim()
                .parse::<i128>()
                .map(Rational::int)
                .map_err(|_| bad()),
            Some((a, b)) => {
                let num = a.trim().parse::<i128>().map_err(|_| bad())?;
                let den = b.trim().parse::<i128>().map_err(|_| bad())?;
                if den == 0 {
                    return Err(bad());
                }
                Ok(Rational::new(num, den))
            }
        }
    }
}

/// Convenience constructor: `rat(a, b) == a/b`.
pub fn rat(num: i128, den: i128) -> Rational {
    Rational::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_form() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, -7), Rational::ZERO);
        assert_eq!(rat(2, -4).den(), 2);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(1, 2) / rat(1, 4), Rational::TWO);
        assert_eq!(-rat(1, 2), rat(-1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat(7, 2).floor(), 3);
        assert_eq!(rat(7, 2).ceil(), 4);
        assert_eq!(rat(-7, 2).floor(), -4);
        assert_eq!(rat(-7, 2).ceil(), -3);
        assert_eq!(rat(6, 2).floor(), 3);
        assert_eq!(rat(6, 2).ceil(), 3);
        assert_eq!(Rational::ZERO.floor(), 0);
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(rat(2, 3).pow(3), rat(8, 27));
        assert_eq!(rat(2, 3).pow(-2), rat(9, 4));
        assert_eq!(rat(5, 7).pow(0), Rational::ONE);
        assert_eq!(rat(3, 4).recip(), rat(4, 3));
        assert_eq!(rat(-3, 4).recip(), rat(-4, 3));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(2, 4) == rat(1, 2));
        assert_eq!(rat(3, 7).max(rat(2, 5)), rat(3, 7));
        assert_eq!(rat(3, 7).min(rat(2, 5)), rat(2, 5));
    }

    #[test]
    fn parse_roundtrip() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), rat(3, 4));
        assert_eq!("-6/8".parse::<Rational>().unwrap(), rat(-3, 4));
        assert_eq!("42".parse::<Rational>().unwrap(), Rational::int(42));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x".parse::<Rational>().is_err());
    }

    #[test]
    fn sums_products() {
        let v = [rat(1, 2), rat(1, 3), rat(1, 6)];
        assert_eq!(v.iter().copied().sum::<Rational>(), Rational::ONE);
        assert_eq!(v.iter().copied().product::<Rational>(), rat(1, 36));
    }

    fn arb_rat() -> impl Strategy<Value = Rational> {
        (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rational::new(n, d))
    }

    proptest! {
        #[test]
        fn field_axioms(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + Rational::ZERO, a);
            prop_assert_eq!(a * Rational::ONE, a);
            prop_assert_eq!(a - a, Rational::ZERO);
            if !a.is_zero() {
                prop_assert_eq!(a * a.recip(), Rational::ONE);
            }
        }

        #[test]
        fn floor_ceil_consistent(a in arb_rat()) {
            let fl = a.floor();
            let ce = a.ceil();
            prop_assert!(Rational::int(fl) <= a);
            prop_assert!(a <= Rational::int(ce));
            prop_assert!(ce - fl <= 1);
            prop_assert_eq!(a.is_integer(), fl == ce);
        }

        #[test]
        fn ordering_total(a in arb_rat(), b in arb_rat()) {
            // antisymmetry + consistency with subtraction sign
            let d = a - b;
            prop_assert_eq!(a > b, d.is_positive());
            prop_assert_eq!(a < b, d.is_negative());
            prop_assert_eq!(a == b, d.is_zero());
        }
    }
}
