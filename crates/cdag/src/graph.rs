//! The computational DAG and its set analyses.

use iolb_ir::{ArrayId, StmtId};
use iolb_memsim::ChunkedTrace;
use std::collections::{BTreeSet, VecDeque};

/// Node identifier inside a [`Cdag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Kind of a CDAG node — a borrowed view into the graph's flat node
/// metadata (iteration vectors live in one shared arena, not one allocation
/// per node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind<'a> {
    /// A program input datum (`array[flat]` before any write).
    Input {
        /// Array holding the datum.
        array: ArrayId,
        /// Flat element index.
        flat: usize,
    },
    /// A statement instance.
    Compute {
        /// The statement.
        stmt: StmtId,
        /// Its iteration vector.
        iv: &'a [i32],
    },
}

/// Owning node description used to *construct* a [`Cdag`] (the graph
/// immediately flattens these into its arena storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSpec {
    /// A program input datum.
    Input {
        /// Array holding the datum.
        array: ArrayId,
        /// Flat element index.
        flat: usize,
    },
    /// A statement instance.
    Compute {
        /// The statement.
        stmt: StmtId,
        /// Its iteration vector.
        iv: Box<[i32]>,
    },
}

/// A computational DAG in CSR form.
///
/// Compute nodes appear in *schedule order* (the order the interpreter
/// executed them), so `0..n` restricted to compute nodes is always a valid
/// sequential schedule.
///
/// Storage is fully flat: adjacency in two CSR pairs, node metadata in
/// parallel arrays, and all iteration vectors concatenated in one arena —
/// building a graph performs O(1) allocations, not O(nodes).
#[derive(Debug)]
pub struct Cdag {
    /// Per node: `(array, flat)` for inputs, `(stmt, compute index)` for
    /// computes, discriminated by `is_input`.
    meta: Vec<(u32, u32)>,
    is_input: Vec<bool>,
    num_inputs: usize,
    /// Iteration-vector arena: compute `c` owns
    /// `iv_data[iv_off[c] .. iv_off[c + 1]]`.
    iv_off: Vec<u32>,
    iv_data: Vec<i32>,
    pred_off: Vec<u32>,
    preds: Vec<u32>,
    succ_off: Vec<u32>,
    succs: Vec<u32>,
}

impl Cdag {
    /// Builds from node specs and a (possibly duplicated) edge list
    /// `from → to`.
    pub fn from_edges(kinds: Vec<NodeSpec>, edges: Vec<(u32, u32)>) -> Cdag {
        let mut meta = Vec::with_capacity(kinds.len());
        let mut is_input = Vec::with_capacity(kinds.len());
        let mut iv_off = vec![0u32];
        let mut iv_data = Vec::new();
        let mut num_inputs = 0usize;
        for kind in kinds {
            match kind {
                NodeSpec::Input { array, flat } => {
                    meta.push((array.0, flat as u32));
                    is_input.push(true);
                    num_inputs += 1;
                }
                NodeSpec::Compute { stmt, iv } => {
                    let c = iv_off.len() - 1;
                    iv_data.extend_from_slice(&iv);
                    iv_off.push(iv_data.len() as u32);
                    meta.push((stmt.0, c as u32));
                    is_input.push(false);
                }
            }
        }
        Cdag::from_parts(meta, is_input, num_inputs, iv_off, iv_data, edges)
    }

    /// Arena-level constructor for arbitrary edge lists: sorts and
    /// deduplicates, then defers to the linear CSR build.
    pub(crate) fn from_parts(
        meta: Vec<(u32, u32)>,
        is_input: Vec<bool>,
        num_inputs: usize,
        iv_off: Vec<u32>,
        iv_data: Vec<i32>,
        mut edges: Vec<(u32, u32)>,
    ) -> Cdag {
        edges.sort_unstable_by_key(|&(a, b)| (b, a));
        edges.dedup();
        Cdag::from_grouped_edges(meta, is_input, num_inputs, iv_off, iv_data, edges)
    }

    /// Arena-level constructor for the builders' native edge order:
    /// duplicate-free edges grouped by nondecreasing `to` (the natural
    /// output of schedule-order recording). The CSR pairs are assembled
    /// with counting passes only — no comparison sort:
    ///
    /// * successor rows fill in stream order, so each row's targets come
    ///   out ascending (the stream is `to`-ordered);
    /// * predecessor rows then fill by walking successors in source order,
    ///   so each row's sources come out ascending too.
    pub(crate) fn from_grouped_edges(
        meta: Vec<(u32, u32)>,
        is_input: Vec<bool>,
        num_inputs: usize,
        iv_off: Vec<u32>,
        iv_data: Vec<i32>,
        edges: Vec<(u32, u32)>,
    ) -> Cdag {
        let n = meta.len();
        let mut last_to = 0u32;
        for &(a, b) in &edges {
            assert!(
                a < b,
                "edges must go forward in schedule order ({a} -> {b})"
            );
            assert!((b as usize) < n, "edge endpoint out of range");
            debug_assert!(b >= last_to, "edges must be grouped by target");
            last_to = b;
        }
        // Degree counts accumulate directly into the offset arrays (shifted
        // by one), then a prefix sum turns them into row starts.
        let mut pred_off = vec![0u32; n + 1];
        let mut succ_off = vec![0u32; n + 1];
        for &(a, b) in &edges {
            succ_off[a as usize + 1] += 1;
            pred_off[b as usize + 1] += 1;
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
            succ_off[i + 1] += succ_off[i];
        }
        let mut succs = vec![0u32; edges.len()];
        // The offset array doubles as the fill cursor; each row's cursor
        // ends at the next row's start, so one backward shift restores it.
        for &(a, b) in &edges {
            succs[succ_off[a as usize] as usize] = b;
            succ_off[a as usize] += 1;
        }
        for i in (1..=n).rev() {
            succ_off[i] = succ_off[i - 1];
        }
        succ_off[0] = 0;
        let mut preds = vec![0u32; edges.len()];
        for a in 0..n {
            for &b in &succs[succ_off[a] as usize..succ_off[a + 1] as usize] {
                preds[pred_off[b as usize] as usize] = a as u32;
                pred_off[b as usize] += 1;
            }
        }
        for i in (1..=n).rev() {
            pred_off[i] = pred_off[i - 1];
        }
        pred_off[0] = 0;
        Cdag {
            meta,
            is_input,
            num_inputs,
            iv_off,
            iv_data,
            pred_off,
            preds,
            succ_off,
            succs,
        }
    }

    /// Number of nodes (inputs + computes).
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when the graph has no node.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Node kind (a borrowed view; iteration vectors point into the graph's
    /// shared arena).
    pub fn kind(&self, v: NodeId) -> NodeKind<'_> {
        let i = v.0 as usize;
        let (a, b) = self.meta[i];
        if self.is_input[i] {
            NodeKind::Input {
                array: ArrayId(a),
                flat: b as usize,
            }
        } else {
            let c = b as usize;
            NodeKind::Compute {
                stmt: StmtId(a),
                iv: &self.iv_data[self.iv_off[c] as usize..self.iv_off[c + 1] as usize],
            }
        }
    }

    /// Predecessors of `v`.
    pub fn preds(&self, v: NodeId) -> &[u32] {
        &self.preds[self.pred_off[v.0 as usize] as usize..self.pred_off[v.0 as usize + 1] as usize]
    }

    /// Successors of `v`.
    pub fn succs(&self, v: NodeId) -> &[u32] {
        &self.succs[self.succ_off[v.0 as usize] as usize..self.succ_off[v.0 as usize + 1] as usize]
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.preds.len()
    }

    /// Iterator over compute nodes in schedule order.
    pub fn compute_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.is_input
            .iter()
            .enumerate()
            .filter(|(_, &inp)| !inp)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Iterator over input nodes.
    pub fn input_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.is_input
            .iter()
            .enumerate()
            .filter(|(_, &inp)| inp)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Number of compute nodes.
    pub fn num_computes(&self) -> usize {
        self.meta.len() - self.num_inputs
    }

    /// Appends the packed value-access trace of the program-order schedule
    /// to `out` (`(node << 1) | is_produce` per event, the `iolb-memsim`
    /// encoding with node ids as cells): each compute step reads its
    /// predecessors in CSR order, then produces its own value (a write —
    /// no load, the red-white Compute rule).
    ///
    /// This is exactly the access sequence a pebble play services, at
    /// value granularity (every node is written once, before any read, so
    /// cache simulations of this trace need no overwrite handling). A MIN
    /// cache simulation of the trace lower-bounds the loads of *every*
    /// legal play: any play's pebble moves are a valid replacement
    /// schedule for the trace, while the simulators may additionally drop
    /// an operand mid-step (staging through registers), which no play's
    /// pinned compute groups can.
    pub fn packed_program_order_trace(&self, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.num_edges() + self.num_computes());
        for v in self.compute_nodes() {
            for &p in self.preds(v) {
                out.push((p as u64) << 1);
            }
            out.push(((v.0 as u64) << 1) | 1);
        }
    }

    /// Streaming view of the same packed program-order trace: a
    /// [`ChunkedTrace`] pull source the sharded curve engines read window
    /// by window, so the trace is never materialized as one `Vec<u64>`.
    /// Costs one `u64` offset per compute node; event windows regenerate
    /// from the CSR on every [`ChunkedTrace::fill`].
    pub fn program_order_trace(&self) -> ProgramOrderTrace<'_> {
        let mut computes = Vec::with_capacity(self.num_computes());
        let mut event_off = Vec::with_capacity(self.num_computes() + 1);
        event_off.push(0u64);
        let mut total = 0u64;
        for v in self.compute_nodes() {
            computes.push(v.0);
            total += self.preds(v).len() as u64 + 1;
            event_off.push(total);
        }
        ProgramOrderTrace {
            cdag: self,
            computes,
            event_off,
        }
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Structural comparison of two CDAGs: `None` when node kinds and
    /// adjacency are identical, `Some(diff)` naming the first difference.
    /// The differential fuzz oracle uses this to pin the fast declared-
    /// access construction path against the executed ground-truth path.
    pub fn diff(&self, other: &Cdag) -> Option<String> {
        if self.len() != other.len() {
            return Some(format!("node count: {} vs {}", self.len(), other.len()));
        }
        if self.num_inputs() != other.num_inputs() {
            return Some(format!(
                "input count: {} vs {}",
                self.num_inputs(),
                other.num_inputs()
            ));
        }
        if self.num_edges() != other.num_edges() {
            return Some(format!(
                "edge count: {} vs {}",
                self.num_edges(),
                other.num_edges()
            ));
        }
        for i in 0..self.len() as u32 {
            let v = NodeId(i);
            if self.kind(v) != other.kind(v) {
                return Some(format!(
                    "node {i}: {:?} vs {:?}",
                    self.kind(v),
                    other.kind(v)
                ));
            }
            if self.preds(v) != other.preds(v) {
                return Some(format!(
                    "preds of node {i}: {:?} vs {:?}",
                    self.preds(v),
                    other.preds(v)
                ));
            }
        }
        None
    }

    /// Finds the compute node of `stmt` at iteration vector `iv` (linear
    /// scan: meant for tests/validation on small graphs).
    pub fn node_of(&self, stmt: StmtId, iv: &[i32]) -> Option<NodeId> {
        (0..self.meta.len() as u32).map(NodeId).find(|v| {
            matches!(self.kind(*v),
                NodeKind::Compute { stmt: s, iv: x } if s == stmt && x == iv)
        })
    }

    /// Maximum in-degree over compute nodes (a play needs `S ≥ indeg + 1`).
    pub fn max_in_degree(&self) -> usize {
        self.compute_nodes()
            .map(|v| self.preds(v).len())
            .max()
            .unwrap_or(0)
    }

    /// BFS path existence `a ⇝ b`.
    pub fn has_path(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        // Edges only go forward, so prune by node id.
        let mut seen = vec![false; self.len()];
        let mut q = VecDeque::new();
        q.push_back(a.0);
        seen[a.0 as usize] = true;
        while let Some(v) = q.pop_front() {
            for &w in self.succs(NodeId(v)) {
                if w == b.0 {
                    return true;
                }
                if w < b.0 && !seen[w as usize] {
                    seen[w as usize] = true;
                    q.push_back(w);
                }
            }
        }
        false
    }

    /// `InSet(E)`: data used by `E` but not produced inside `E` — the set of
    /// predecessors (including input nodes) lying outside `E`.
    pub fn inset(&self, e: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        let mut inset = BTreeSet::new();
        for &v in e {
            for &p in self.preds(v) {
                if !e.contains(&NodeId(p)) {
                    inset.insert(NodeId(p));
                }
            }
        }
        inset
    }

    /// Convexity check: `E` is convex iff no dependency chain leaves `E` and
    /// re-enters it.
    pub fn is_convex(&self, e: &BTreeSet<NodeId>) -> bool {
        // BFS from the outside-successors of E; reaching E again disproves
        // convexity.
        let mut seen = vec![false; self.len()];
        let mut q = VecDeque::new();
        for &v in e {
            for &w in self.succs(v) {
                if !e.contains(&NodeId(w)) && !seen[w as usize] {
                    seen[w as usize] = true;
                    q.push_back(w);
                }
            }
        }
        while let Some(v) = q.pop_front() {
            for &w in self.succs(NodeId(v)) {
                if e.contains(&NodeId(w)) {
                    return false;
                }
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    q.push_back(w);
                }
            }
        }
        true
    }

    /// Convex closure: repeatedly adds nodes lying on chains between members.
    ///
    /// Cubic-ish; for test-sized graphs only.
    pub fn convex_closure(&self, e: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        let mut cur = e.clone();
        loop {
            // reachable-from-cur (forward), and can-reach-cur (backward).
            let mut fwd = vec![false; self.len()];
            let mut bwd = vec![false; self.len()];
            let mut q: VecDeque<u32> = cur.iter().map(|v| v.0).collect();
            for &v in &cur {
                fwd[v.0 as usize] = true;
            }
            while let Some(v) = q.pop_front() {
                for &w in self.succs(NodeId(v)) {
                    if !fwd[w as usize] {
                        fwd[w as usize] = true;
                        q.push_back(w);
                    }
                }
            }
            let mut q: VecDeque<u32> = cur.iter().map(|v| v.0).collect();
            for &v in &cur {
                bwd[v.0 as usize] = true;
            }
            while let Some(v) = q.pop_front() {
                for &w in self.preds(NodeId(v)) {
                    if !bwd[w as usize] {
                        bwd[w as usize] = true;
                        q.push_back(w);
                    }
                }
            }
            let mut grown = cur.clone();
            for v in 0..self.len() as u32 {
                if fwd[v as usize] && bwd[v as usize] {
                    grown.insert(NodeId(v));
                }
            }
            if grown.len() == cur.len() {
                return cur;
            }
            cur = grown;
        }
    }
}

/// Chunked pull source over a [`Cdag`]'s program-order value-access trace
/// (see [`Cdag::packed_program_order_trace`] for the event semantics).
///
/// Built by [`Cdag::program_order_trace`]. Holds cumulative event offsets
/// per compute node; `fill` binary-searches the compute containing the
/// window start and regenerates events straight from the CSR, so shards
/// can read disjoint windows concurrently without any shared cursor.
#[derive(Debug)]
pub struct ProgramOrderTrace<'a> {
    cdag: &'a Cdag,
    /// Compute nodes in schedule order.
    computes: Vec<u32>,
    /// `event_off[c]` = global position of compute `c`'s first event;
    /// final entry is the trace length.
    event_off: Vec<u64>,
}

impl ChunkedTrace for ProgramOrderTrace<'_> {
    fn len(&self) -> u64 {
        *self.event_off.last().expect("offsets are never empty")
    }

    fn fill(&self, start: u64, buf: &mut [u64]) {
        assert!(
            start + buf.len() as u64 <= self.len(),
            "fill window {start}..{} exceeds trace length {}",
            start + buf.len() as u64,
            self.len()
        );
        // Greatest compute whose first event is at or before `start`.
        let mut c = self.event_off.partition_point(|&off| off <= start) - 1;
        let mut pos = start;
        let mut i = 0usize;
        while i < buf.len() {
            let v = NodeId(self.computes[c]);
            let preds = self.cdag.preds(v);
            // Events of compute `c`: its predecessors' reads in CSR order,
            // then its own produce.
            let mut k = (pos - self.event_off[c]) as usize;
            while k < preds.len() && i < buf.len() {
                buf[i] = (preds[k] as u64) << 1;
                i += 1;
                k += 1;
                pos += 1;
            }
            if k == preds.len() && i < buf.len() {
                buf[i] = ((v.0 as u64) << 1) | 1;
                i += 1;
                pos += 1;
            }
            if pos == self.event_off[c + 1] {
                c += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 → {1, 2} → 3, with an input node 4 feeding 0 is invalid
    /// (edges must go forward), so inputs come first: i0=0 feeds c1, c2…
    fn diamond() -> Cdag {
        // 0: input; 1: a; 2: b; 3: c; 4: d  with edges 0→1, 1→2, 1→3, 2→4, 3→4
        let kinds = vec![
            NodeSpec::Input {
                array: ArrayId(0),
                flat: 0,
            },
            NodeSpec::Compute {
                stmt: StmtId(0),
                iv: vec![0].into(),
            },
            NodeSpec::Compute {
                stmt: StmtId(0),
                iv: vec![1].into(),
            },
            NodeSpec::Compute {
                stmt: StmtId(1),
                iv: vec![0].into(),
            },
            NodeSpec::Compute {
                stmt: StmtId(1),
                iv: vec![1].into(),
            },
        ];
        Cdag::from_edges(kinds, vec![(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)])
    }

    #[test]
    fn csr_adjacency() {
        let g = diamond();
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.preds(NodeId(4)), &[2, 3]);
        assert_eq!(g.succs(NodeId(1)), &[2, 3]);
        assert_eq!(g.num_computes(), 4);
        assert_eq!(g.input_nodes().count(), 1);
        assert_eq!(g.max_in_degree(), 2);
    }

    #[test]
    fn node_lookup() {
        let g = diamond();
        assert_eq!(g.node_of(StmtId(0), &[1]), Some(NodeId(2)));
        assert_eq!(g.node_of(StmtId(1), &[7]), None);
    }

    #[test]
    fn paths() {
        let g = diamond();
        assert!(g.has_path(NodeId(0), NodeId(4)));
        assert!(g.has_path(NodeId(2), NodeId(4)));
        assert!(!g.has_path(NodeId(2), NodeId(3)));
        assert!(g.has_path(NodeId(3), NodeId(3)));
    }

    #[test]
    fn inset_counts_external_preds() {
        let g = diamond();
        let e: BTreeSet<NodeId> = [NodeId(2), NodeId(4)].into_iter().collect();
        let inset = g.inset(&e);
        // preds outside E: node 1 (pred of 2) and node 3 (pred of 4).
        assert_eq!(inset, [NodeId(1), NodeId(3)].into_iter().collect());
    }

    #[test]
    fn convexity() {
        let g = diamond();
        // {1, 4} skips the middle layer: chain 1→2→4 leaves and re-enters.
        let e: BTreeSet<NodeId> = [NodeId(1), NodeId(4)].into_iter().collect();
        assert!(!g.is_convex(&e));
        let c: BTreeSet<NodeId> = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
            .into_iter()
            .collect();
        assert!(g.is_convex(&c));
        assert_eq!(g.convex_closure(&e), c);
    }

    #[test]
    fn streaming_trace_matches_materialized_at_every_window() {
        let g = diamond();
        let mut want = Vec::new();
        g.packed_program_order_trace(&mut want);
        let stream = g.program_order_trace();
        assert_eq!(ChunkedTrace::len(&stream), want.len() as u64);
        // Every (start, len) window regenerates exactly the materialized
        // slice — including windows straddling compute-node boundaries.
        for start in 0..want.len() {
            for n in 0..=(want.len() - start) {
                let mut buf = vec![0u64; n];
                stream.fill(start as u64, &mut buf);
                assert_eq!(buf, want[start..start + n], "window {start}+{n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds trace length")]
    fn streaming_trace_rejects_out_of_range_windows() {
        let g = diamond();
        let stream = g.program_order_trace();
        let mut buf = vec![0u64; 2];
        stream.fill(ChunkedTrace::len(&stream) - 1, &mut buf);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_edge_rejected() {
        let kinds = vec![
            NodeSpec::Compute {
                stmt: StmtId(0),
                iv: vec![0].into(),
            },
            NodeSpec::Compute {
                stmt: StmtId(0),
                iv: vec![1].into(),
            },
        ];
        let _ = Cdag::from_edges(kinds, vec![(1, 0)]);
    }
}
