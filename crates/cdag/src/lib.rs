//! Computational DAGs and the red-white pebble game.
//!
//! The paper's I/O model is formalized on the CDAG of a program (§2): nodes
//! are statement instances (plus input data), edges are flow dependencies,
//! and the red-white pebble game of Olivry et al. plays schedules without
//! recomputation. This crate provides:
//!
//! * [`graph`] — the CDAG itself plus the set analyses the K-partitioning
//!   proof talks about: insets, convexity, path/dependency-chain queries,
//! * [`build`] — exact CDAG construction from an interpreted program run
//!   (last-writer tracking over every array cell),
//! * [`pebble`] — the red-white pebble game engine with pluggable spill
//!   policies (LRU and a MIN-style farthest-next-use policy), which turns a
//!   topological schedule into a *valid play* and counts its loads,
//! * [`bound`] — graph-level I/O lower bounds that need nothing but the
//!   CDAG (input floor, DAG-visit partition accounting, certified spectral
//!   boundary bound), covering kernels the symbolic derivation refuses.
//!
//! Pebble-game loads of any schedule upper-bound nothing and lower-bound
//! nothing by themselves — but they are valid plays, so every derived lower
//! bound must sit below the best play found. This is the workspace's
//! empirical validation harness for `iolb-core`.

pub mod bound;
pub mod build;
pub mod graph;
pub mod pebble;

pub use bound::{input_floor, SpectralProfile, VisitProfile, SPECTRAL_NODE_CAP};
pub use build::{build_cdag, build_cdag_executed, try_build_cdag, CdagBuilder};
pub use graph::{Cdag, NodeId, NodeKind, NodeSpec, ProgramOrderTrace};
pub use pebble::{PebbleError, PebbleGame, PlayStats, SpillPolicy};
