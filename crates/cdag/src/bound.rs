//! Graph-level I/O lower bounds computed from the raw CDAG alone.
//!
//! The symbolic σ/hourglass derivation refuses every kernel outside its
//! affine class. The three quantities in this module need nothing but the
//! graph, so they cover exactly that refused population:
//!
//! * [`input_floor`] — every input datum with a consumer must be loaded
//!   at least once in *any* complete execution;
//! * [`VisitProfile`] — the computable core of the DAG-visit / partition
//!   framework (Bilardi & De Stefani, arXiv:2210.01897): any execution
//!   order splits into consecutive segments of `T` computes, each segment
//!   pays for the part of its in-set that cannot sit in cache, and the
//!   in-set size is lower-bounded by pure degree counting;
//! * [`SpectralProfile`] — a boundary bound in the style of Jain & Zaharia
//!   (arXiv:1909.09791): the cut around any `T`-subset is at least
//!   `λ₂·T(n−T)/n`, with `λ₂` replaced by a *certified* lower bound
//!   obtained by Cauchy interlacing on the grounded Laplacian, an
//!   integer-safe power-iteration window, and margin-guarded Cholesky
//!   probes.
//!
//! Every bound here is sound for the red-white cost model this workspace
//! simulates: loads are read misses, produces are free, schedules are
//! topological orders without recomputation, and a capacity-`S` cache
//! holds at most `S` node values. The differential fuzz oracle enforces
//! `engine bound ≤ OPT(S)` at every swept `S`.
//!
//! # The segment inequality
//!
//! Both the visit and the spectral bound instantiate one inequality. Fix
//! any execution (a topological order π of the `n_c` computes) and cut π
//! into consecutive segments `E_1 … E_q'` of `T` computes each (the last
//! may be smaller). Every value of `InSet(E_j)` — predecessors of `E_j`
//! outside `E_j` — is read during segment `j`, exists before the segment
//! starts (its producer is an input or an earlier compute), and can only
//! be in cache at segment start (at most `S` values) or loaded during the
//! segment. Hence
//!
//! ```text
//! loads ≥ Σ_j max(0, |InSet(E_j)| − S).
//! ```
//!
//! The two engines differ only in how they lower-bound `|InSet(E_j)|`
//! without knowing π: the visit engine by degree counting over *any*
//! `T`-subset, the spectral engine by the Laplacian cut bound.

use crate::graph::Cdag;

/// Number of input nodes with at least one consumer: each is read by some
/// compute in every complete execution, and the first read of an input is
/// a miss at every capacity (inputs are never produced). A lower bound on
/// loads at every `S`, for every schedule.
pub fn input_floor(cdag: &Cdag) -> u64 {
    cdag.input_nodes()
        .filter(|&v| !cdag.succs(v).is_empty())
        .count() as u64
}

/// Precomputed degree profile backing the visit/partition bound.
///
/// For any set `E` of `T` computes, `|InSet(E)| ≥ |preds(E)| − T`, and
/// counting edges into `E` two ways gives
/// `|preds(E)| · δ ≥ Σ_{v∈E} indeg(v) ≥ P[T]`, where `δ` is the maximum
/// out-degree over all nodes and `P[T]` is the sum of the `T` *smallest*
/// compute in-degrees. So every segment of `T` computes satisfies
/// `|InSet| ≥ ⌈P[T]/δ⌉ − T`, independent of the execution order.
#[derive(Debug, Clone)]
pub struct VisitProfile {
    /// `prefix[t]` = sum of the `t` smallest compute in-degrees.
    prefix: Vec<u64>,
    /// Maximum out-degree over all nodes (≥ 1 once there is any edge).
    outdeg_max: u64,
    /// Number of compute nodes.
    n_c: usize,
}

impl VisitProfile {
    /// Builds the profile in `O(n log n)`.
    pub fn new(cdag: &Cdag) -> VisitProfile {
        let mut indegs: Vec<u64> = cdag
            .compute_nodes()
            .map(|v| cdag.preds(v).len() as u64)
            .collect();
        indegs.sort_unstable();
        let mut prefix = Vec::with_capacity(indegs.len() + 1);
        prefix.push(0u64);
        let mut acc = 0u64;
        for d in &indegs {
            acc += d;
            prefix.push(acc);
        }
        let outdeg_max = (0..cdag.len() as u32)
            .map(|v| cdag.succs(crate::graph::NodeId(v)).len() as u64)
            .max()
            .unwrap_or(0)
            .max(1);
        VisitProfile {
            prefix,
            outdeg_max,
            n_c: cdag.num_computes(),
        }
    }

    /// Guaranteed in-set size of *any* set of exactly `t` computes.
    fn min_inset(&self, t: usize) -> u64 {
        let loaded = self.prefix[t].div_ceil(self.outdeg_max);
        loaded.saturating_sub(t as u64)
    }

    /// Lower bound on loads at capacity `s`: the best segment length `T`
    /// of `⌊n_c/T⌋ · max(0, min_inset(T) − s)`.
    pub fn bound(&self, s: usize) -> u64 {
        let mut best = 0u64;
        for t in 1..=self.n_c {
            let slack = self.min_inset(t).saturating_sub(s as u64);
            if slack == 0 {
                continue;
            }
            best = best.max((self.n_c / t) as u64 * slack);
        }
        best
    }
}

/// Node-count ceiling above which the spectral engine declares itself
/// inapplicable: the certification pass factors a dense grounded
/// Laplacian, so cost grows cubically with the node count.
pub const SPECTRAL_NODE_CAP: usize = 512;

/// Fixed-point denominator (2⁴⁰) of the certified `λ₂` lower bound.
const LAMBDA_SCALE_BITS: u32 = 40;

/// Precomputed spectral profile: a certified dyadic lower bound on the
/// algebraic connectivity `λ₂` of the undirected CDAG, plus the degree
/// data the boundary bound needs.
///
/// Soundness chain, in order:
/// 1. `λ₂(L) ≥ λ_min(L_g)` for the grounded Laplacian `L_g` (delete one
///    row/column) — Cauchy interlacing;
/// 2. an integer-safe power iteration on `σI − L_g` gives an exact
///    rational Rayleigh quotient, hence a certified *upper* window for
///    `λ_min(L_g)` that seeds the bisection (window quality affects only
///    tightness, never soundness);
/// 3. bisection certifies `λ_min(L_g) ≥ t` by running a floating-point
///    Cholesky factorization of `L_g − (t + μ)I` with margin
///    `μ ≫ n·ε·‖L_g‖`: successful completion implies the matrix is within
///    `O(n·ε·‖·‖)` of positive semidefinite, so `λ_min ≥ t` holds
///    rigorously despite rounding;
/// 4. the final bound arithmetic is pure `u128` on the dyadic `λ₂` lower
///    bound, rounded *down* at every division.
///
/// For a full segment `E` of `T` computes, `cut(E) ≥ λ₂·T(n−T)/n`; each
/// cross edge is cut by at most two full segments, every in-edge of a
/// segment is a cross edge, and a node feeds a segment's in-set through
/// at most `δ` edges, which yields
/// `loads ≥ ⌊n_c/T⌋·λ₂·T(n−T)/(2n·δ) − ⌈n_c/T⌉·S`.
#[derive(Debug, Clone)]
pub struct SpectralProfile {
    /// Certified `λ₂` lower bound, numerator over `2^LAMBDA_SCALE_BITS`.
    lambda2_num: u128,
    /// Maximum (simple) out-degree over all nodes, ≥ 1.
    outdeg_max: u64,
    /// Total node count.
    n: usize,
    /// Compute node count.
    n_c: usize,
}

impl SpectralProfile {
    /// Builds the profile, or `None` when the engine does not apply:
    /// graphs above [`SPECTRAL_NODE_CAP`] or without any edge.
    pub fn new(cdag: &Cdag) -> Option<SpectralProfile> {
        let n = cdag.len();
        if !(3..=SPECTRAL_NODE_CAP).contains(&n) || cdag.num_edges() == 0 {
            return None;
        }
        // Undirected degree of every node; the CSR is duplicate-free, so
        // preds/succs lengths are simple-graph degrees.
        let deg: Vec<u64> = (0..n as u32)
            .map(|v| {
                let v = crate::graph::NodeId(v);
                (cdag.preds(v).len() + cdag.succs(v).len()) as u64
            })
            .collect();
        let ground = deg
            .iter()
            .enumerate()
            .max_by_key(|&(i, d)| (*d, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        // Dense grounded Laplacian (f64 entries are small integers).
        let m = n - 1;
        let map = |v: usize| {
            if v < ground {
                Some(v)
            } else if v == ground {
                None
            } else {
                Some(v - 1)
            }
        };
        let mut lap = vec![0f64; m * m];
        let mut lap_int = vec![0i64; m * m];
        for (i, &d) in deg.iter().enumerate() {
            if let Some(r) = map(i) {
                lap[r * m + r] = d as f64;
                lap_int[r * m + r] = d as i64;
            }
        }
        for v in 0..n as u32 {
            for &u in cdag.succs(crate::graph::NodeId(v)) {
                if let (Some(a), Some(b)) = (map(v as usize), map(u as usize)) {
                    lap[a * m + b] = -1.0;
                    lap[b * m + a] = -1.0;
                    lap_int[a * m + b] = -1;
                    lap_int[b * m + a] = -1;
                }
            }
        }
        let d_max = *deg.iter().max().unwrap_or(&1);
        // Certified upper window for λ_min(L_g): the smallest diagonal
        // entry (Rayleigh quotient of a basis vector), tightened by the
        // integer power-iteration Rayleigh estimate on σI − L_g.
        let min_diag = (0..m).map(|i| lap_int[i * m + i]).min().unwrap_or(0) as f64;
        let sigma = 2 * d_max as i64 + 1;
        let mut hi = min_diag.min(power_iteration_window(&lap_int, m, sigma));
        if hi <= 0.0 {
            hi = 0.0;
        }
        // Bisection with margin-guarded Cholesky probes. The margin is a
        // generous multiple of n·ε·‖L_g − tI‖_∞, far above the backward
        // error of a completed Cholesky factorization in IEEE double.
        let norm = 2.0 * d_max as f64 + hi.abs() + 1.0;
        let margin = 1024.0 * m as f64 * f64::EPSILON * norm;
        let mut lo = 0.0f64;
        let mut hi = hi.max(0.0);
        let mut scratch = vec![0f64; m * m];
        for _ in 0..24 {
            let t = 0.5 * (lo + hi);
            if t <= lo || t - lo < margin {
                break;
            }
            scratch.copy_from_slice(&lap);
            for i in 0..m {
                scratch[i * m + i] -= t + margin;
            }
            if cholesky_succeeds(&mut scratch, m) {
                lo = t;
            } else {
                hi = t;
            }
        }
        let lambda2_num = (lo * (1u64 << LAMBDA_SCALE_BITS) as f64).floor().max(0.0) as u128;
        let outdeg_max = (0..n as u32)
            .map(|v| cdag.succs(crate::graph::NodeId(v)).len() as u64)
            .max()
            .unwrap_or(0)
            .max(1);
        Some(SpectralProfile {
            lambda2_num,
            outdeg_max,
            n,
            n_c: cdag.num_computes(),
        })
    }

    /// Certified `λ₂` lower bound as an `f64` (test/report surface; the
    /// bound arithmetic itself stays in integers).
    pub fn lambda2_lower(&self) -> f64 {
        self.lambda2_num as f64 / (1u64 << LAMBDA_SCALE_BITS) as f64
    }

    /// Lower bound on loads at capacity `s`, maximized over the segment
    /// length. All arithmetic is `u128` with downward rounding.
    pub fn bound(&self, s: usize) -> u64 {
        if self.lambda2_num == 0 || self.n_c == 0 {
            return 0;
        }
        let (n, n_c) = (self.n as u128, self.n_c as u128);
        let mut best = 0u64;
        for t in 1..=self.n_c as u128 {
            let q = n_c / t;
            // C_total ≥ q·λ₂·T(n−T)/(2n), rounded down.
            let cross = q * self.lambda2_num * t * (n - t) / (n << (LAMBDA_SCALE_BITS + 1));
            let inset_sum = cross / self.outdeg_max as u128;
            let q_all = n_c.div_ceil(t);
            let val = inset_sum.saturating_sub(q_all * s as u128);
            best = best.max(val.min(u64::MAX as u128) as u64);
        }
        best
    }
}

/// Integer-safe power iteration on `B = σI − L_g`: ~24 matrix-vector
/// rounds in `i64` with shift rescaling, then one exact `i128` Rayleigh
/// quotient `⌈vᵀBv / vᵀv⌉`, which certifies `λ_max(B) ≥ vᵀBv/vᵀv` and so
/// `λ_min(L_g) ≤ σ − vᵀBv/vᵀv`. Returns that upper window (an `f64` that
/// only seeds the bisection — soundness never depends on it).
fn power_iteration_window(lap_int: &[i64], m: usize, sigma: i64) -> f64 {
    let mut v: Vec<i64> = (0..m)
        .map(|i| {
            // Deterministic xorshift fill; any nonzero pattern works.
            let mut x = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) | 1;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 255) as i64 + 1
        })
        .collect();
    let mut next = vec![0i64; m];
    for _ in 0..24 {
        for (r, out) in next.iter_mut().enumerate() {
            let mut acc: i64 = 0;
            let row = &lap_int[r * m..(r + 1) * m];
            for (c, &l) in row.iter().enumerate() {
                if l != 0 {
                    acc -= l * v[c];
                }
            }
            *out = sigma * v[r] + acc;
        }
        let max_abs = next.iter().map(|x| x.abs()).max().unwrap_or(0);
        let shift = (64 - max_abs.leading_zeros()).saturating_sub(20);
        for (dst, &src) in v.iter_mut().zip(next.iter()) {
            *dst = src >> shift;
        }
        if v.iter().all(|&x| x == 0) {
            return f64::INFINITY;
        }
    }
    let mut num: i128 = 0; // vᵀBv
    let mut den: i128 = 0; // vᵀv
    for r in 0..m {
        let mut bv: i128 = sigma as i128 * v[r] as i128;
        let row = &lap_int[r * m..(r + 1) * m];
        for (c, &l) in row.iter().enumerate() {
            if l != 0 {
                bv -= l as i128 * v[c] as i128;
            }
        }
        num += v[r] as i128 * bv;
        den += v[r] as i128 * v[r] as i128;
    }
    if den == 0 {
        return f64::INFINITY;
    }
    // λ_min(L_g) ≤ σ − num/den; round the subtrahend down (f64 division
    // here only widens the window).
    sigma as f64 - (num as f64 / den as f64) + 1.0
}

/// In-place lower Cholesky attempt on a dense symmetric `m×m` matrix;
/// `true` when every pivot stays strictly positive and finite.
fn cholesky_succeeds(a: &mut [f64], m: usize) -> bool {
    for j in 0..m {
        let mut d = a[j * m + j];
        for k in 0..j {
            d -= a[j * m + k] * a[j * m + k];
        }
        if d <= 0.0 || !d.is_finite() {
            return false;
        }
        let root = d.sqrt();
        a[j * m + j] = root;
        for i in (j + 1)..m {
            let mut x = a[i * m + j];
            for k in 0..j {
                x -= a[i * m + k] * a[j * m + k];
            }
            a[i * m + j] = x / root;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test-only assertions
    use super::*;
    use crate::graph::{NodeId, NodeSpec};
    use iolb_ir::{ArrayId, StmtId};

    fn input(flat: usize) -> NodeSpec {
        NodeSpec::Input {
            array: ArrayId(0),
            flat,
        }
    }

    fn compute(iv: i32) -> NodeSpec {
        NodeSpec::Compute {
            stmt: StmtId(0),
            iv: Box::new([iv]),
        }
    }

    /// x_0, x_1 inputs; chain v_i = op(v_{i-1}, x_i) modeled with one
    /// fresh input per compute.
    fn chain(len: usize) -> Cdag {
        let mut kinds = Vec::new();
        let mut edges = Vec::new();
        // Alternate input, compute so edges run forward.
        for i in 0..len {
            kinds.push(input(i)); // node 2i
            kinds.push(compute(i as i32)); // node 2i+1
            edges.push((2 * i as u32, 2 * i as u32 + 1));
            if i > 0 {
                edges.push((2 * i as u32 - 1, 2 * i as u32 + 1));
            }
        }
        Cdag::from_edges(kinds, edges)
    }

    #[test]
    fn input_floor_counts_consumed_inputs() {
        let g = chain(5);
        assert_eq!(input_floor(&g), 5);
        // A graph with no inputs has floor zero.
        let free = Cdag::from_edges(vec![compute(0), compute(1)], vec![(0, 1)]);
        assert_eq!(input_floor(&free), 0);
    }

    #[test]
    fn visit_bound_is_tight_on_chains_and_sound() {
        let g = chain(16);
        let p = VisitProfile::new(&g);
        // Chain computes have indeg 2 (1 for the head), outdeg_max = 1:
        // min_inset(T) ≈ T, so the whole-graph segment gives ~n_c − s.
        let b = p.bound(2);
        assert!(b >= 13, "chain visit bound too weak: {b}");
        // Soundness vs the OPT curve of the program-order trace.
        let mut trace = Vec::new();
        g.packed_program_order_trace(&mut trace);
        let mut engine = iolb_memsim::CurveEngine::new();
        let opt = engine.opt_packed(&trace, 64);
        for s in 2..=16 {
            assert!(
                p.bound(s) <= opt.loads(s),
                "S={s}: visit {} > OPT {}",
                p.bound(s),
                opt.loads(s)
            );
        }
    }

    #[test]
    fn visit_bound_handles_degenerate_graphs() {
        // No edges at all: everything is free.
        let free = Cdag::from_edges(vec![compute(0), compute(1)], vec![]);
        let p = VisitProfile::new(&free);
        assert_eq!(p.bound(1), 0);
        // Empty graph.
        let empty = Cdag::from_edges(vec![], vec![]);
        assert_eq!(VisitProfile::new(&empty).bound(1), 0);
    }

    #[test]
    fn spectral_profile_certifies_a_positive_lambda2_on_a_clique() {
        // K5 as a layered DAG: λ₂ of K5 is 5; the grounded bound must
        // certify something strictly positive and ≤ 5.
        let kinds: Vec<NodeSpec> = (0..5).map(compute).collect();
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        let g = Cdag::from_edges(kinds, edges);
        let p = SpectralProfile::new(&g).expect("applicable");
        let l2 = p.lambda2_lower();
        assert!(l2 > 0.5, "clique λ₂ lower bound too weak: {l2}");
        assert!(l2 <= 5.0 + 1e-9, "clique λ₂ lower bound unsound: {l2}");
    }

    #[test]
    fn spectral_profile_is_zero_on_disconnected_graphs() {
        // Two disjoint edges: λ₂ = 0, so the certified bound collapses.
        let kinds: Vec<NodeSpec> = (0..4).map(compute).collect();
        let g = Cdag::from_edges(kinds, vec![(0, 1), (2, 3)]);
        if let Some(p) = SpectralProfile::new(&g) {
            assert!(p.lambda2_lower() < 1e-6, "disconnected λ₂ must be ~0");
            assert_eq!(p.bound(1), 0);
        }
    }

    #[test]
    fn spectral_refuses_oversized_and_trivial_graphs() {
        let empty = Cdag::from_edges(vec![], vec![]);
        assert!(SpectralProfile::new(&empty).is_none());
        let no_edges = Cdag::from_edges((0..4).map(compute).collect(), vec![]);
        assert!(SpectralProfile::new(&no_edges).is_none());
    }

    #[test]
    fn spectral_bound_is_sound_vs_opt_on_small_graphs() {
        let g = chain(12);
        if let Some(p) = SpectralProfile::new(&g) {
            let mut trace = Vec::new();
            g.packed_program_order_trace(&mut trace);
            let mut engine = iolb_memsim::CurveEngine::new();
            let opt = engine.opt_packed(&trace, 64);
            for s in 2..=16 {
                assert!(
                    p.bound(s) <= opt.loads(s),
                    "S={s}: spectral {} > OPT {}",
                    p.bound(s),
                    opt.loads(s)
                );
            }
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        let g = chain(9);
        let a = VisitProfile::new(&g);
        let b = VisitProfile::new(&g);
        for s in 1..=8 {
            assert_eq!(a.bound(s), b.bound(s));
        }
        let pa = SpectralProfile::new(&g).map(|p| p.lambda2_num);
        let pb = SpectralProfile::new(&g).map(|p| p.lambda2_num);
        assert_eq!(pa, pb);
    }

    #[test]
    fn grounded_laplacian_interlaces_below_true_lambda2_on_a_path() {
        // P4 path: λ₂ = 2 − √2 ≈ 0.586. The certified bound must sit in
        // (0, 0.586].
        let kinds: Vec<NodeSpec> = (0..4).map(compute).collect();
        let g = Cdag::from_edges(kinds, vec![(0, 1), (1, 2), (2, 3)]);
        let p = SpectralProfile::new(&g).expect("applicable");
        let l2 = p.lambda2_lower();
        assert!(l2 > 0.0, "path λ₂ lower bound vanished");
        assert!(l2 <= 2.0 - std::f64::consts::SQRT_2 + 1e-9, "unsound: {l2}");
        // NodeId smoke: the ground vertex choice must not disturb ids.
        assert_eq!(g.preds(NodeId(1)), &[0]);
    }
}
