//! Exact CDAG construction.
//!
//! Two synchronized paths produce the precise flow-dependence CDAG of the
//! paper:
//!
//! * [`build_cdag`] — the fast path: walks the loop tree enumerating
//!   statement instances (no store, no f64 execution) and evaluates each
//!   statement's *declared* affine accesses. The declared accesses are
//!   certified to match the executed ones instance-by-instance by
//!   `iolb_ir::validate_accesses`, so this is exact for every certified
//!   program — and it is pure integer work over dense tables.
//! * [`build_cdag_executed`] — the original path: [`CdagBuilder`] is an
//!   [`ExecSink`]; the interpreter executes the program and every performed
//!   read is wired to the *last writer* of the cell (or to an input node
//!   when the cell was never written). Ground truth for the fast path (a
//!   test asserts both produce identical graphs on all paper kernels).
//!
//! Inputs and computes are allocated in separate id spaces during the run
//! and merged at finish time: all inputs first (they carry the initial
//! white pebbles), then computes in schedule order, so every edge is
//! forward and `inputs.len()..len()` is a valid sequential schedule.

use crate::graph::Cdag;
use iolb_govern::{AnalysisError, Budget, CancelToken, Seam};
use iolb_ir::{try_for_each_instance, ArrayId, ExecSink, Interpreter, Program, StmtId, Store};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    Input(u32),
    Compute(u32),
}

const NIL: u32 = u32::MAX;

/// Dense per-array cell table (`tbl[array][flat]`), grown on demand — cell
/// ids are flat array offsets, so this is two array indexations instead of
/// a hash per access.
#[derive(Debug, Default)]
struct CellTable {
    cols: Vec<Vec<u32>>,
}

impl CellTable {
    #[inline]
    fn get(&self, array: u32, flat: usize) -> u32 {
        match self.cols.get(array as usize) {
            Some(col) => col.get(flat).copied().unwrap_or(NIL),
            None => NIL,
        }
    }

    #[inline]
    fn slot(&mut self, array: u32, flat: usize) -> &mut u32 {
        let a = array as usize;
        if a >= self.cols.len() {
            self.cols.resize_with(a + 1, Vec::new);
        }
        let col = &mut self.cols[a];
        if flat >= col.len() {
            col.resize(flat + 1, NIL);
        }
        &mut col[flat]
    }
}

/// Shared recording state of both construction paths.
#[derive(Debug, Default)]
struct Recorder {
    /// Per compute node: statement id.
    stmts: Vec<u32>,
    /// Iteration-vector arena (compute `c` owns `iv_off[c]..iv_off[c+1]`).
    iv_off: Vec<u32>,
    iv_data: Vec<i32>,
    inputs: Vec<(ArrayId, usize)>,
    edges: Vec<(End, u32)>,
    /// Index into `edges` where the current instance's edges begin (for
    /// within-instance duplicate-read filtering).
    instance_start: usize,
    /// cell → producing compute (in compute id space)
    last_writer: CellTable,
    /// cell → input node (in input id space)
    input_node: CellTable,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            iv_off: vec![0],
            ..Recorder::default()
        }
    }

    #[inline]
    fn current(&self) -> u32 {
        (self.stmts.len() - 1) as u32
    }

    #[inline]
    fn record_stmt(&mut self, stmt: StmtId, iv: impl Iterator<Item = i64>) {
        self.stmts.push(stmt.0);
        self.iv_data.extend(iv.map(|x| x as i32));
        self.iv_off.push(self.iv_data.len() as u32);
        self.instance_start = self.edges.len();
    }

    #[inline]
    fn record_read(&mut self, array: ArrayId, flat: usize) {
        let cur = self.current();
        let from = match self.last_writer.get(array.0, flat) {
            w if w != NIL => End::Compute(w),
            _ => {
                let slot = self.input_node.slot(array.0, flat);
                if *slot == NIL {
                    self.inputs.push((array, flat));
                    *slot = (self.inputs.len() - 1) as u32;
                }
                End::Input(*slot)
            }
        };
        // Repeated reads of one cell within an instance are one edge; this
        // is the only duplicate source (targets are per-instance), so the
        // recorded stream is globally duplicate-free.
        if !self.edges[self.instance_start..]
            .iter()
            .any(|&(f, _)| f == from)
        {
            self.edges.push((from, cur));
        }
    }

    #[inline]
    fn record_write(&mut self, array: ArrayId, flat: usize) {
        let cur = self.current();
        *self.last_writer.slot(array.0, flat) = cur;
    }

    fn finish(self) -> Cdag {
        let n_in = self.inputs.len();
        let n = n_in + self.stmts.len();
        let mut meta = Vec::with_capacity(n);
        let mut is_input = Vec::with_capacity(n);
        for (array, flat) in self.inputs {
            meta.push((array.0, flat as u32));
            is_input.push(true);
        }
        for (c, stmt) in self.stmts.iter().enumerate() {
            meta.push((*stmt, c as u32));
            is_input.push(false);
        }
        let edges = self
            .edges
            .into_iter()
            .map(|(from, to)| {
                let f = match from {
                    End::Input(i) => i,
                    End::Compute(c) => n_in as u32 + c,
                };
                (f, n_in as u32 + to)
            })
            .collect();
        // Recording order is schedule order: targets nondecreasing, and
        // record_read filtered duplicates, so the linear CSR build applies.
        Cdag::from_grouped_edges(meta, is_input, n_in, self.iv_off, self.iv_data, edges)
    }
}

/// [`ExecSink`] that records nodes and flow edges from an *executed* run.
#[derive(Debug)]
pub struct CdagBuilder {
    rec: Recorder,
}

impl Default for CdagBuilder {
    fn default() -> CdagBuilder {
        CdagBuilder::new()
    }
}

impl CdagBuilder {
    /// Fresh builder.
    pub fn new() -> CdagBuilder {
        CdagBuilder {
            rec: Recorder::new(),
        }
    }

    /// Finalizes into a [`Cdag`].
    pub fn finish(self) -> Cdag {
        self.rec.finish()
    }
}

impl ExecSink for CdagBuilder {
    fn on_stmt(&mut self, stmt: StmtId, iv: &[i64]) {
        self.rec.record_stmt(stmt, iv.iter().copied());
    }

    fn on_read(&mut self, array: ArrayId, flat: usize) {
        self.rec.record_read(array, flat);
    }

    fn on_write(&mut self, array: ArrayId, flat: usize) {
        self.rec.record_write(array, flat);
    }
}

/// Runs `program` at `params` and returns its exact CDAG — fast path.
///
/// Enumerates instances with `iolb_ir::for_each_instance` and evaluates the
/// *declared* affine accesses of each statement (reads wired before writes,
/// matching the read-then-write convention of the executable semantics).
/// Exact whenever the program's metadata is certified by
/// `iolb_ir::validate_accesses` — all shipped kernels are.
///
/// All state is pre-sized flat storage — per-array cell tables sized from
/// the array extents, one iteration-vector arena, and a packed edge list —
/// so construction is a branch-light integer pass over the instances.
pub fn build_cdag(program: &Program, params: &[i64]) -> Cdag {
    try_build_cdag(
        program,
        params,
        &Budget::unlimited(),
        &CancelToken::unlimited(),
    )
    .unwrap_or_else(|e| panic!("build_cdag: {e}"))
}

/// Governed [`build_cdag`]: polls `token` at [`Seam::CdagFill`] during the
/// instance walk, sizes every per-array cell table with checked
/// arithmetic against `budget.max_arena_bytes` *before* allocating (huge
/// parameters return `BudgetExceeded` instead of wrapping the table size
/// or OOMing), counts instances against `budget.max_instances` during the
/// walk, and checks node/edge totals against the budget after the fill.
pub fn try_build_cdag(
    program: &Program,
    params: &[i64],
    budget: &Budget,
    token: &CancelToken,
) -> Result<Cdag, AnalysisError> {
    let n_arrays = program.arrays.len();
    let mut lens: Vec<usize> = Vec::with_capacity(n_arrays);
    let mut cell_bytes = 0u64;
    for i in 0..n_arrays {
        let len = program
            .try_array_len(ArrayId(i as u32), params)
            .ok_or_else(|| {
                AnalysisError::Refused(format!(
                    "array {} has an unsizable extent at these parameters",
                    program.arrays[i].name
                ))
            })?
            .max(1);
        cell_bytes = cell_bytes.saturating_add(len.saturating_mul(4));
        if cell_bytes > budget.max_arena_bytes {
            return Err(AnalysisError::BudgetExceeded {
                resource: "arena_bytes",
                needed: cell_bytes,
                limit: budget.max_arena_bytes,
            });
        }
        let len = usize::try_from(len).map_err(|_| AnalysisError::BudgetExceeded {
            resource: "arena_bytes",
            needed: u64::MAX,
            limit: budget.max_arena_bytes,
        })?;
        lens.push(len);
    }
    let strides: Vec<Vec<usize>> = (0..n_arrays)
        .map(|i| program.array_strides(ArrayId(i as u32), params))
        .collect();
    // One packed state per cell, doubling as the edge's `from` endpoint:
    // NIL = untouched, `input_id << 1 | 1` = first touch was a read (input
    // node), `compute_id << 1` = last written by that compute.
    let mut cells: Vec<Vec<u32>> = lens.iter().map(|&l| vec![NIL; l]).collect();
    let mut stmts: Vec<u32> = Vec::new();
    let mut iv_off: Vec<u32> = vec![0];
    let mut iv_data: Vec<i32> = Vec::new();
    let mut inputs: Vec<(u32, u32)> = Vec::new();
    // Packed `from` endpoint: `input_id << 1 | 1` or `compute_id << 1`.
    let mut edges: Vec<(u32, u32)> = Vec::new();

    try_for_each_instance(
        program,
        params,
        token,
        Seam::CdagFill,
        budget.max_instances,
        |stmt_id, dims| {
            let stmt = program.stmt(stmt_id);
            stmts.push(stmt_id.0);
            iv_data.extend(stmt.dims.iter().map(|d| dims[d.0 as usize] as i32));
            iv_off.push(iv_data.len() as u32);
            let cur = (stmts.len() - 1) as u32;
            let flat_of = |access: &iolb_ir::Access| -> usize {
                let st = &strides[access.array.0 as usize];
                let mut f = 0usize;
                for (axis, aff) in access.idx.iter().enumerate() {
                    let v = aff.eval_envs(dims, params);
                    debug_assert!(v >= 0, "negative declared subscript");
                    f += st[axis] * v as usize;
                }
                f
            };
            let instance_start = edges.len();
            for access in &stmt.reads {
                let f = flat_of(access);
                let slot = &mut cells[access.array.0 as usize][f];
                if *slot == NIL {
                    *slot = ((inputs.len() as u32) << 1) | 1;
                    inputs.push((access.array.0, f as u32));
                }
                let from = *slot;
                // Duplicate declared reads of one producer within an instance
                // are a single edge.
                if !edges[instance_start..].iter().any(|&(e, _)| e == from) {
                    edges.push((from, cur));
                }
            }
            for access in &stmt.writes {
                cells[access.array.0 as usize][flat_of(access)] = cur << 1;
            }
        },
    )?;

    // Second-line totals check (admission bounds these ahead of time; the
    // instance ceiling above bounds them during the fill).
    let node_total = (inputs.len() as u64).saturating_add(stmts.len() as u64);
    if node_total > budget.max_cdag_nodes {
        return Err(AnalysisError::BudgetExceeded {
            resource: "cdag_nodes",
            needed: node_total,
            limit: budget.max_cdag_nodes,
        });
    }
    if edges.len() as u64 > budget.max_cdag_edges {
        return Err(AnalysisError::BudgetExceeded {
            resource: "cdag_edges",
            needed: edges.len() as u64,
            limit: budget.max_cdag_edges,
        });
    }

    // Merge id spaces: inputs first, then computes in schedule order.
    let n_in = inputs.len();
    let n = n_in + stmts.len();
    let mut meta = Vec::with_capacity(n);
    let mut is_input = Vec::with_capacity(n);
    for (array, flat) in inputs {
        meta.push((array, flat));
        is_input.push(true);
    }
    for (c, stmt) in stmts.iter().enumerate() {
        meta.push((*stmt, c as u32));
        is_input.push(false);
    }
    for (from, to) in &mut edges {
        *from = if *from & 1 == 1 {
            *from >> 1
        } else {
            n_in as u32 + (*from >> 1)
        };
        *to += n_in as u32;
    }
    // Enumeration order is schedule order: targets nondecreasing and
    // duplicates filtered above, so the linear CSR build applies.
    Ok(Cdag::from_grouped_edges(
        meta, is_input, n_in, iv_off, iv_data, edges,
    ))
}

/// Runs `program` at `params` through the interpreter and returns the CDAG
/// of the *performed* accesses — the ground-truth construction.
pub fn build_cdag_executed(program: &Program, params: &[i64]) -> Cdag {
    let mut builder = CdagBuilder::new();
    let mut store = Store::init(program, params, |a, f| 1.0 + a.0 as f64 + f as f64 * 0.25);
    Interpreter::new(program, params).run(&mut store, &mut builder);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use iolb_ir::{Access, ProgramBuilder};

    /// prefix-sum: `for i in 1..N { x[i] = x[i] + x[i-1] }`
    fn prefix() -> iolb_ir::Program {
        let mut b = ProgramBuilder::new("prefix_cdag", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let i = b.open("i", b.c(1), b.p("N"));
        let xi = Access::new(x, vec![b.d(i)]);
        let xm = Access::new(x, vec![b.d(i) - 1]);
        b.stmt("S", vec![xi.clone(), xm], vec![xi], move |c| {
            let v = c.rd(x, &[c.v(0)]) + c.rd(x, &[c.v(0) - 1]);
            c.wr(x, &[c.v(0)], v);
        });
        b.close();
        b.finish()
    }

    #[test]
    fn chain_structure() {
        let p = prefix();
        let g = build_cdag(&p, &[5]);
        // S[i] reads x[i] (input: first touch) and x[i-1] (S[i-1]'s output
        // for i ≥ 2, input x[0] for i = 1): 4 computes + 5 inputs.
        assert_eq!(g.num_computes(), 4);
        assert_eq!(g.input_nodes().count(), 5);
        let s = p.stmt_id("S").unwrap();
        let n1 = g.node_of(s, &[1]).unwrap();
        let n4 = g.node_of(s, &[4]).unwrap();
        assert!(g.has_path(n1, n4));
        assert!(!g.has_path(n4, n1));
    }

    #[test]
    fn inputs_precede_computes() {
        let p = prefix();
        let g = build_cdag(&p, &[6]);
        let first_compute = g.compute_nodes().next().unwrap();
        for i in g.input_nodes() {
            assert!(i < first_compute);
        }
        for v in 0..g.len() as u32 {
            for &w in g.succs(NodeId(v)) {
                assert!(w > v, "forward edge {v}->{w}");
            }
        }
    }

    #[test]
    fn reduction_fan_in() {
        // acc = 0; for i in 0..N { acc += x[i] }: node S[i] depends on
        // S[i-1] (acc) and input x[i].
        let mut b = ProgramBuilder::new("red_cdag", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let acc = b.scalar("acc");
        let wa = Access::new(acc, vec![]);
        b.stmt("Z", vec![], vec![wa.clone()], move |c| c.wr(acc, &[], 0.0));
        let i = b.open("i", b.c(0), b.p("N"));
        let xi = Access::new(x, vec![b.d(i)]);
        b.stmt("S", vec![xi, wa.clone()], vec![wa], move |c| {
            let v = c.rd(x, &[c.v(0)]) + c.rd(acc, &[]);
            c.wr(acc, &[], v);
        });
        b.close();
        let p = b.finish();
        let g = build_cdag(&p, &[4]);
        let s = p.stmt_id("S").unwrap();
        let z = p.stmt_id("Z").unwrap();
        let n0 = g.node_of(s, &[0]).unwrap();
        let n3 = g.node_of(s, &[3]).unwrap();
        let nz = g.node_of(z, &[]).unwrap();
        assert!(g.has_path(nz, n3));
        assert!(g.has_path(n0, n3));
        assert_eq!(g.preds(n3).len(), 2); // x[3] input + S[2]
    }

    #[test]
    fn repeated_reads_dedup_edges() {
        // S reads x[0] twice: one edge only.
        let mut b = ProgramBuilder::new("dup_cdag", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let y = b.scalar("y");
        let rx = Access::new(x, vec![b.c(0)]);
        let wy = Access::new(y, vec![]);
        b.stmt("S", vec![rx], vec![wy], move |c| {
            let v = c.rd(x, &[0]) * c.rd(x, &[0]);
            c.wr(y, &[], v);
        });
        let p = b.finish();
        let g = build_cdag(&p, &[3]);
        assert_eq!(g.num_edges(), 1);
    }

    /// The declared-access fast path and the executed ground-truth path must
    /// agree exactly on structure.
    fn assert_same_graph(p: &iolb_ir::Program, params: &[i64]) {
        let fast = build_cdag(p, params);
        let slow = build_cdag_executed(p, params);
        assert_eq!(fast.len(), slow.len(), "{}: node count", p.name);
        assert_eq!(fast.num_edges(), slow.num_edges(), "{}: edge count", p.name);
        assert_eq!(fast.num_computes(), slow.num_computes(), "{}", p.name);
        for v in 0..fast.len() as u32 {
            assert_eq!(
                fast.preds(NodeId(v)),
                slow.preds(NodeId(v)),
                "{}: preds of {v}",
                p.name
            );
            assert_eq!(
                fast.kind(NodeId(v)),
                slow.kind(NodeId(v)),
                "{}: kind of {v}",
                p.name
            );
        }
    }

    #[test]
    fn declared_path_matches_executed_path() {
        assert_same_graph(&prefix(), &[7]);
    }

    /// The fast path must agree with the executed ground truth on every
    /// paper kernel, not just toys — this is what licenses `build_cdag`'s
    /// reliance on certified declared accesses.
    #[test]
    fn declared_path_matches_executed_path_on_paper_kernels() {
        let cases: Vec<(iolb_ir::Program, Vec<i64>)> = vec![
            (iolb_kernels::mgs::program(), vec![10, 5]),
            (iolb_kernels::mgs::tiled_program(), vec![10, 5, 2]),
            (iolb_kernels::householder::a2v_program(), vec![10, 5]),
            (iolb_kernels::householder::v2q_program(), vec![10, 5]),
            (iolb_kernels::gebd2::program(), vec![8, 4]),
            (iolb_kernels::gehd2::program(), vec![8]),
            (iolb_kernels::gemm::program(), vec![5, 4, 3]),
        ];
        for (program, params) in &cases {
            assert_same_graph(program, params);
        }
    }
}
