//! Exact CDAG construction from an interpreted run.
//!
//! The builder is an [`ExecSink`]: the interpreter executes the program in
//! schedule order; every read is wired to the *last writer* of the cell (or
//! to an input node when the cell was never written). The result is the
//! precise flow-dependence CDAG of the paper — no approximation — which the
//! symbolic analyses are certified against.
//!
//! Inputs and computes are allocated in separate id spaces during the run
//! and merged at [`CdagBuilder::finish`]: all inputs first (they carry the
//! initial white pebbles), then computes in schedule order, so every edge is
//! forward and `inputs.len()..len()` is a valid sequential schedule.

use crate::graph::{Cdag, NodeKind};
#[cfg(test)]
use crate::graph::NodeId;
use iolb_ir::{ArrayId, ExecSink, Interpreter, Program, StmtId, Store};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum End {
    Input(u32),
    Compute(u32),
}

/// [`ExecSink`] that records nodes and flow edges.
#[derive(Debug, Default)]
pub struct CdagBuilder {
    computes: Vec<(StmtId, Box<[i32]>)>,
    inputs: Vec<(ArrayId, usize)>,
    edges: Vec<(End, u32)>,
    /// cell → producing compute (in compute id space)
    last_writer: HashMap<(u32, usize), u32>,
    /// cell → input node (in input id space)
    input_node: HashMap<(u32, usize), u32>,
}

impl CdagBuilder {
    /// Fresh builder.
    pub fn new() -> CdagBuilder {
        CdagBuilder::default()
    }

    /// Finalizes into a [`Cdag`].
    pub fn finish(self) -> Cdag {
        let n_in = self.inputs.len() as u32;
        let mut kinds = Vec::with_capacity(self.inputs.len() + self.computes.len());
        for (array, flat) in self.inputs {
            kinds.push(NodeKind::Input { array, flat });
        }
        for (stmt, iv) in self.computes {
            kinds.push(NodeKind::Compute { stmt, iv });
        }
        let edges = self
            .edges
            .into_iter()
            .map(|(from, to)| {
                let f = match from {
                    End::Input(i) => i,
                    End::Compute(c) => n_in + c,
                };
                (f, n_in + to)
            })
            .collect();
        Cdag::from_edges(kinds, edges)
    }

    fn current(&self) -> u32 {
        (self.computes.len() - 1) as u32
    }
}

impl ExecSink for CdagBuilder {
    fn on_stmt(&mut self, stmt: StmtId, iv: &[i64]) {
        self.computes
            .push((stmt, iv.iter().map(|&x| x as i32).collect()));
    }

    fn on_read(&mut self, array: ArrayId, flat: usize) {
        let cur = self.current();
        let key = (array.0, flat);
        let from = match self.last_writer.get(&key) {
            Some(&w) => End::Compute(w),
            None => {
                let id = *self.input_node.entry(key).or_insert_with(|| {
                    self.inputs.push((array, flat));
                    (self.inputs.len() - 1) as u32
                });
                End::Input(id)
            }
        };
        self.edges.push((from, cur));
    }

    fn on_write(&mut self, array: ArrayId, flat: usize) {
        let cur = self.current();
        self.last_writer.insert((array.0, flat), cur);
    }
}

/// Runs `program` at `params` and returns its exact CDAG.
pub fn build_cdag(program: &Program, params: &[i64]) -> Cdag {
    let mut builder = CdagBuilder::new();
    let mut store = Store::init(program, params, |a, f| 1.0 + a.0 as f64 + f as f64 * 0.25);
    Interpreter::new(program, params).run(&mut store, &mut builder);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_ir::{Access, ProgramBuilder};

    /// prefix-sum: `for i in 1..N { x[i] = x[i] + x[i-1] }`
    fn prefix() -> iolb_ir::Program {
        let mut b = ProgramBuilder::new("prefix_cdag", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let i = b.open("i", b.c(1), b.p("N"));
        let xi = Access::new(x, vec![b.d(i)]);
        let xm = Access::new(x, vec![b.d(i) - 1]);
        b.stmt("S", vec![xi.clone(), xm], vec![xi], move |c| {
            let v = c.rd(x, &[c.v(0)]) + c.rd(x, &[c.v(0) - 1]);
            c.wr(x, &[c.v(0)], v);
        });
        b.close();
        b.finish()
    }

    #[test]
    fn chain_structure() {
        let p = prefix();
        let g = build_cdag(&p, &[5]);
        // S[i] reads x[i] (input: first touch) and x[i-1] (S[i-1]'s output
        // for i ≥ 2, input x[0] for i = 1): 4 computes + 5 inputs.
        assert_eq!(g.num_computes(), 4);
        assert_eq!(g.input_nodes().count(), 5);
        let s = p.stmt_id("S").unwrap();
        let n1 = g.node_of(s, &[1]).unwrap();
        let n4 = g.node_of(s, &[4]).unwrap();
        assert!(g.has_path(n1, n4));
        assert!(!g.has_path(n4, n1));
    }

    #[test]
    fn inputs_precede_computes() {
        let p = prefix();
        let g = build_cdag(&p, &[6]);
        let first_compute = g.compute_nodes().next().unwrap();
        for i in g.input_nodes() {
            assert!(i < first_compute);
        }
        for v in 0..g.len() as u32 {
            for &w in g.succs(NodeId(v)) {
                assert!(w > v, "forward edge {v}->{w}");
            }
        }
    }

    #[test]
    fn reduction_fan_in() {
        // acc = 0; for i in 0..N { acc += x[i] }: node S[i] depends on
        // S[i-1] (acc) and input x[i].
        let mut b = ProgramBuilder::new("red_cdag", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let acc = b.scalar("acc");
        let wa = Access::new(acc, vec![]);
        b.stmt("Z", vec![], vec![wa.clone()], move |c| c.wr(acc, &[], 0.0));
        let i = b.open("i", b.c(0), b.p("N"));
        let xi = Access::new(x, vec![b.d(i)]);
        b.stmt("S", vec![xi, wa.clone()], vec![wa], move |c| {
            let v = c.rd(x, &[c.v(0)]) + c.rd(acc, &[]);
            c.wr(acc, &[], v);
        });
        b.close();
        let p = b.finish();
        let g = build_cdag(&p, &[4]);
        let s = p.stmt_id("S").unwrap();
        let z = p.stmt_id("Z").unwrap();
        let n0 = g.node_of(s, &[0]).unwrap();
        let n3 = g.node_of(s, &[3]).unwrap();
        let nz = g.node_of(z, &[]).unwrap();
        assert!(g.has_path(nz, n3));
        assert!(g.has_path(n0, n3));
        assert_eq!(g.preds(n3).len(), 2); // x[3] input + S[2]
    }

    #[test]
    fn repeated_reads_dedup_edges() {
        // S reads x[0] twice: one edge only.
        let mut b = ProgramBuilder::new("dup_cdag", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let y = b.scalar("y");
        let rx = Access::new(x, vec![b.c(0)]);
        let wy = Access::new(y, vec![]);
        b.stmt("S", vec![rx], vec![wy], move |c| {
            let v = c.rd(x, &[0]) * c.rd(x, &[0]);
            c.wr(y, &[], v);
        });
        let p = b.finish();
        let g = build_cdag(&p, &[3]);
        assert_eq!(g.num_edges(), 1);
    }
}
