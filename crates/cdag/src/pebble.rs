//! The red-white pebble game (Olivry et al., adopted by the paper in §2).
//!
//! Rules implemented exactly as stated:
//!
//! * white pebbles start on the inputs; at most `S` red pebbles exist;
//! * **Load** places a red pebble on a white-pebbled node (this is the
//!   counted I/O);
//! * **Compute** places white+red on a node whose predecessors are all red
//!   (no recomputation: once white, never computed again);
//! * **Spill** removes a red pebble (free — the bound only counts loads).
//!
//! [`PebbleGame::play`] turns a topological schedule into a valid play: it
//! loads missing predecessor pebbles on demand and spills with a pluggable
//! policy (LRU or farthest-next-use) when the red budget is exhausted. The
//! resulting load count is achieved by a *legal* play, so every correct
//! lower bound must sit at or below it — the workspace's empirical
//! validation of `iolb-core`'s derivations.
//!
//! ## Engine
//!
//! The red set is dense and index-addressed — no hashing anywhere on the
//! play path:
//!
//! * **LRU** keeps red nodes on an intrusive doubly-linked list over flat
//!   `prev`/`next` slabs (the same design as `memsim::LruSim`): touch and
//!   evict are O(1), with eviction skipping at most the few pinned nodes of
//!   the current compute step, not scanning the whole red set;
//! * **MinNextUse** buckets red nodes by their next-use position
//!   (`MinRedSet`): hierarchical bitmaps answer "farthest next use" in a
//!   few word ops, a whole bucket drains in O(1) when the schedule reaches
//!   its position, and dead (never-used-again) nodes live in their own
//!   bitmap evicted first;
//! * next-use chains are the successor CSR mapped through the schedule
//!   permutation (only for the MIN policy — LRU plays never materialize
//!   them).
//!
//! The straightforward ordered-map engine the workspace started with is kept
//! verbatim in [`reference`](mod@reference); property tests assert both engines produce
//! identical [`PlayStats`] on randomized CDAGs.

use crate::graph::{Cdag, NodeId, NodeKind};
use iolb_memsim::MaxPosSet;

/// Spill (red-pebble replacement) policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpillPolicy {
    /// Spill the least-recently-used red pebble.
    Lru,
    /// Spill the red pebble whose next use in the schedule is farthest
    /// (Belady-style MIN; optimal among demand policies for a fixed order).
    MinNextUse,
}

/// Outcome of a legal play.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayStats {
    /// Number of Load moves (the I/O cost of the play).
    pub loads: u64,
    /// Number of Compute moves.
    pub computes: u64,
    /// Peak number of red pebbles in use.
    pub peak_red: usize,
}

/// Why a play could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PebbleError {
    /// A node needs `indegree + 1` red pebbles, more than `S`.
    CapacityTooSmall {
        /// Offending node.
        node: NodeId,
        /// Red pebbles required simultaneously.
        needed: usize,
        /// Budget available.
        budget: usize,
    },
    /// Schedule uses a predecessor that has no white pebble yet.
    PredecessorNotComputed {
        /// Node being computed.
        node: NodeId,
        /// Its not-yet-white predecessor.
        pred: NodeId,
    },
    /// Schedule computes a node twice or misses nodes.
    InvalidSchedule(String),
}

impl std::fmt::Display for PebbleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PebbleError::CapacityTooSmall {
                node,
                needed,
                budget,
            } => write!(
                f,
                "node {node:?} needs {needed} red pebbles but S = {budget}"
            ),
            PebbleError::PredecessorNotComputed { node, pred } => {
                write!(f, "schedule computes {node:?} before predecessor {pred:?}")
            }
            PebbleError::InvalidSchedule(s) => write!(f, "invalid schedule: {s}"),
        }
    }
}

impl std::error::Error for PebbleError {}

const NIL: u32 = u32::MAX;

/// Intrusive doubly-linked recency list over a flat node-indexed slab.
///
/// `head` is most recently used, `tail` least recently used. Only nodes
/// currently red are linked; membership is tracked by the caller.
struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
}

impl LruList {
    fn new(n: usize) -> LruList {
        LruList {
            prev: vec![NIL; n],
            next: vec![NIL; n],
            head: NIL,
            tail: NIL,
        }
    }

    fn push_front(&mut self, v: u32) {
        self.prev[v as usize] = NIL;
        self.next[v as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = v;
        }
        self.head = v;
        if self.tail == NIL {
            self.tail = v;
        }
    }

    fn unlink(&mut self, v: u32) {
        let (p, n) = (self.prev[v as usize], self.next[v as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }

    /// Least-recently-used node that is not pinned (walks past the pinned
    /// suffix of the list — at most `indegree + 1` hops).
    fn lru_unpinned(&self, pinned: &[bool]) -> Option<u32> {
        let mut v = self.tail;
        while v != NIL && pinned[v as usize] {
            v = self.prev[v as usize];
        }
        (v != NIL).then_some(v)
    }
}

/// The MIN policy's red set, bucketed by next-use position.
///
/// A red node's spill key is the schedule position of its next use (or
/// "dead" when it is never used again). Keys are at most the schedule
/// length, and the nodes sharing a key `t` are necessarily predecessors of
/// the node computed at `t` — at most `max_in_degree` of them — so the
/// whole priority structure collapses into:
///
/// * `buckets` — a flat slab of `[len, node₀ … node_{K−1}]` rows, one per
///   next-use position (one cache line per bucket operation),
/// * `alive` — a [`MaxPosSet`] over positions with a non-empty bucket,
/// * `dead` — a [`MaxPosSet`] over node ids of never-used-again reds.
///
/// Nodes are never removed individually from buckets: when the play
/// reaches position `t`, *every* member of bucket `t` is a red predecessor
/// about to be touched, so the whole bucket is drained at once
/// ([`drain_bucket`](MinRedSet::drain_bucket)) and members re-enter with
/// their fresh keys — no per-node key tracking at all.
///
/// Victim selection reproduces the ordered-map reference engine exactly:
/// largest `(key, node)` pair with dead nodes comparing as `+∞`, ties
/// broken towards the larger node id.
struct MinRedSet {
    alive: MaxPosSet,
    dead: MaxPosSet,
    /// Bucket slab, stride `k + 1`: row `t` is
    /// `buckets[t * (k+1)] = len`, then `len` node ids.
    buckets: Vec<u32>,
    k1: usize,
    /// Scratch for pinned entries parked during one eviction (reused so the
    /// hot path never allocates).
    parked: Vec<u32>,
}

const DEAD_KEY: u32 = u32::MAX;

impl MinRedSet {
    fn new(n_nodes: usize, schedule_len: usize, max_indeg: usize) -> MinRedSet {
        let k1 = max_indeg.max(1) + 1;
        MinRedSet {
            alive: MaxPosSet::new(schedule_len),
            dead: MaxPosSet::new(n_nodes),
            buckets: vec![0; schedule_len * k1],
            k1,
            parked: Vec::with_capacity(8),
        }
    }

    /// Inserts a node that is not currently in the set.
    #[inline]
    fn insert(&mut self, node: u32, key: u32) {
        if key == DEAD_KEY {
            self.dead.set(node as usize);
            return;
        }
        let row = key as usize * self.k1;
        let l = self.buckets[row] as usize;
        debug_assert!(l + 1 < self.k1, "bucket overflow at position {key}");
        self.buckets[row + 1 + l] = node;
        self.buckets[row] = (l + 1) as u32;
        if l == 0 {
            self.alive.set(key as usize);
        }
    }

    /// Empties bucket `t` in O(1). Sound exactly when the play has reached
    /// position `t`: every member's next use is *now*, and each will be
    /// re-inserted with its next key as the step touches it.
    #[inline]
    fn drain_bucket(&mut self, t: usize) {
        let row = t * self.k1;
        if self.buckets[row] != 0 {
            self.buckets[row] = 0;
            self.alive.clear(t);
        }
    }

    /// Removes and returns the victim the reference engine would pick:
    /// largest `(key, node)` among unpinned members. `None` when every
    /// member is pinned.
    fn evict_unpinned(&mut self, pinned: &[bool]) -> Option<u32> {
        // Dead nodes first (key +∞), largest id first. Pinned ones are
        // temporarily cleared from the bitmap and restored after.
        self.parked.clear();
        let mut victim = None;
        while let Some(node) = self.dead.max() {
            self.dead.clear(node);
            if pinned[node] {
                self.parked.push(node as u32);
                continue;
            }
            victim = Some(node as u32);
            break;
        }
        for i in 0..self.parked.len() {
            self.dead.set(self.parked[i] as usize);
        }
        if victim.is_some() {
            return victim;
        }
        // Alive buckets in descending position; inside a bucket, the
        // largest unpinned node id. Fully-pinned buckets are temporarily
        // cleared and restored.
        self.parked.clear();
        let mut victim = None;
        while let Some(t) = self.alive.max() {
            let row = t * self.k1;
            let l = self.buckets[row] as usize;
            let nodes = &self.buckets[row + 1..row + 1 + l];
            let mut best: Option<usize> = None;
            for (i, &x) in nodes.iter().enumerate() {
                if !pinned[x as usize] && best.is_none_or(|b: usize| x > nodes[b]) {
                    best = Some(i);
                }
            }
            match best {
                Some(i) => {
                    victim = Some(self.buckets[row + 1 + i]);
                    self.buckets[row + 1 + i] = self.buckets[row + l];
                    self.buckets[row] = (l - 1) as u32;
                    if l == 1 {
                        self.alive.clear(t);
                    }
                    break;
                }
                None => {
                    self.alive.clear(t);
                    self.parked.push(t as u32);
                }
            }
        }
        for i in 0..self.parked.len() {
            self.alive.set(self.parked[i] as usize);
        }
        victim
    }
}

/// Flat CSR of next-use positions: `uses` of node `v` live at
/// `pos[off[v]..off[v + 1]]`, ascending.
struct NextUses {
    off: Vec<u32>,
    pos: Vec<u32>,
    ptr: Vec<u32>,
}

impl NextUses {
    /// `p` is used exactly at the schedule positions of its successors
    /// (every edge `p → w` is one use), so the chains are the successor CSR
    /// mapped through the node→position permutation. For the program-order
    /// schedule the successor rows are already position-sorted; arbitrary
    /// schedules sort each (small) row.
    fn build(cdag: &Cdag, order: &[NodeId]) -> NextUses {
        let n = cdag.len();
        let mut pos_of = vec![0u32; n];
        for (t, &v) in order.iter().enumerate() {
            pos_of[v.0 as usize] = t as u32;
        }
        let mut off = vec![0u32; n + 1];
        for v in 0..n {
            off[v + 1] = off[v] + cdag.succs(NodeId(v as u32)).len() as u32;
        }
        let mut pos = vec![0u32; off[n] as usize];
        for v in 0..n {
            let row = &mut pos[off[v] as usize..off[v + 1] as usize];
            for (slot, &w) in row.iter_mut().zip(cdag.succs(NodeId(v as u32))) {
                *slot = pos_of[w as usize];
            }
            if !row.is_sorted() {
                row.sort_unstable();
            }
        }
        // Each node's read cursor starts at its own row.
        let ptr = off[..n].to_vec();
        NextUses { off, pos, ptr }
    }

    /// First use of `v` strictly after `now` ([`DEAD_KEY`] when dead). The
    /// per-node cursor only moves forward, so the total advance over a play
    /// is bounded by the schedule's edge count.
    fn next_after(&mut self, v: usize, now: u32) -> u32 {
        let end = self.off[v + 1];
        let mut i = self.ptr[v];
        while i < end && self.pos[i as usize] <= now {
            i += 1;
        }
        self.ptr[v] = i;
        if i < end {
            self.pos[i as usize]
        } else {
            DEAD_KEY
        }
    }
}

/// A red-white pebble game on one CDAG with red budget `S`.
#[derive(Debug)]
pub struct PebbleGame<'g> {
    cdag: &'g Cdag,
    budget: usize,
}

impl<'g> PebbleGame<'g> {
    /// Creates a game with red budget `s`.
    ///
    /// # Panics
    /// Panics when `s == 0`.
    pub fn new(cdag: &'g Cdag, s: usize) -> PebbleGame<'g> {
        assert!(s > 0, "red budget must be positive");
        PebbleGame { cdag, budget: s }
    }

    /// Plays the compute nodes in schedule order (node-id order) — the
    /// program's own sequential schedule.
    pub fn play_program_order(&self, policy: SpillPolicy) -> Result<PlayStats, PebbleError> {
        let order: Vec<NodeId> = self.cdag.compute_nodes().collect();
        self.play(&order, policy)
    }

    /// Plays an arbitrary schedule of all compute nodes.
    ///
    /// # Errors
    /// Fails when the schedule is not a permutation of the compute nodes,
    /// is not topological, or when `S` cannot hold a node's inputs.
    pub fn play(&self, order: &[NodeId], policy: SpillPolicy) -> Result<PlayStats, PebbleError> {
        self.check_schedule(order)?;
        match policy {
            SpillPolicy::Lru => self.play_lru(order),
            SpillPolicy::MinNextUse => self.play_min(order),
        }
    }

    /// Schedule sanity: a permutation of the compute nodes.
    fn check_schedule(&self, order: &[NodeId]) -> Result<(), PebbleError> {
        let n = self.cdag.len();
        let mut seen = vec![false; n];
        for &v in order {
            if !matches!(self.cdag.kind(v), NodeKind::Compute { .. }) {
                return Err(PebbleError::InvalidSchedule(format!(
                    "{v:?} is not a compute node"
                )));
            }
            if seen[v.0 as usize] {
                return Err(PebbleError::InvalidSchedule(format!(
                    "{v:?} scheduled twice"
                )));
            }
            seen[v.0 as usize] = true;
        }
        if order.len() != self.cdag.num_computes() {
            return Err(PebbleError::InvalidSchedule(format!(
                "{} of {} compute nodes scheduled",
                order.len(),
                self.cdag.num_computes()
            )));
        }
        Ok(())
    }

    fn play_lru(&self, order: &[NodeId]) -> Result<PlayStats, PebbleError> {
        let n = self.cdag.len();
        let mut white = vec![false; n];
        for v in self.cdag.input_nodes() {
            white[v.0 as usize] = true;
        }
        let mut in_red = vec![false; n];
        let mut pinned = vec![false; n];
        let mut list = LruList::new(n);
        let mut red_len = 0usize;
        let mut stats = PlayStats {
            loads: 0,
            computes: 0,
            peak_red: 0,
        };

        for &v in order {
            let vi = v.0 as usize;
            let preds = self.cdag.preds(v);
            let needed = preds.len() + 1;
            if needed > self.budget {
                return Err(PebbleError::CapacityTooSmall {
                    node: v,
                    needed,
                    budget: self.budget,
                });
            }
            // Pin inputs of v (and v) against spilling while staging.
            for &p in preds {
                pinned[p as usize] = true;
            }
            pinned[vi] = true;

            for &p in preds {
                let pi = p as usize;
                if !white[pi] {
                    return Err(PebbleError::PredecessorNotComputed {
                        node: v,
                        pred: NodeId(p),
                    });
                }
                if in_red[pi] {
                    list.unlink(p);
                    list.push_front(p);
                } else {
                    // Load rule: red onto a white node.
                    while red_len >= self.budget {
                        let victim = list.lru_unpinned(&pinned).ok_or_else(all_pinned)?;
                        list.unlink(victim);
                        in_red[victim as usize] = false;
                        red_len -= 1;
                    }
                    stats.loads += 1;
                    in_red[pi] = true;
                    red_len += 1;
                    list.push_front(p);
                }
            }
            // Compute rule: white + red on v.
            while red_len >= self.budget {
                let victim = list.lru_unpinned(&pinned).ok_or_else(all_pinned)?;
                list.unlink(victim);
                in_red[victim as usize] = false;
                red_len -= 1;
            }
            white[vi] = true;
            in_red[vi] = true;
            red_len += 1;
            list.push_front(v.0);
            stats.computes += 1;
            stats.peak_red = stats.peak_red.max(red_len);

            for &p in preds {
                pinned[p as usize] = false;
            }
            pinned[vi] = false;
        }
        Ok(stats)
    }

    fn play_min(&self, order: &[NodeId]) -> Result<PlayStats, PebbleError> {
        let n = self.cdag.len();
        let mut uses = NextUses::build(self.cdag, order);
        let mut white = vec![false; n];
        for v in self.cdag.input_nodes() {
            white[v.0 as usize] = true;
        }
        let mut in_red = vec![false; n];
        let mut pinned = vec![false; n];
        let mut red = MinRedSet::new(n, order.len(), self.cdag.max_in_degree());
        let mut red_len = 0usize;
        let mut stats = PlayStats {
            loads: 0,
            computes: 0,
            peak_red: 0,
        };

        for (t, &v) in order.iter().enumerate() {
            let vi = v.0 as usize;
            let preds = self.cdag.preds(v);
            let needed = preds.len() + 1;
            if needed > self.budget {
                return Err(PebbleError::CapacityTooSmall {
                    node: v,
                    needed,
                    budget: self.budget,
                });
            }
            for &p in preds {
                pinned[p as usize] = true;
            }
            pinned[vi] = true;
            // Every member of bucket t is a red predecessor of this step;
            // drop them all at once, they re-enter with fresh keys below.
            red.drain_bucket(t);

            for &p in preds {
                let pi = p as usize;
                if !white[pi] {
                    return Err(PebbleError::PredecessorNotComputed {
                        node: v,
                        pred: NodeId(p),
                    });
                }
                let key = uses.next_after(pi, t as u32);
                if in_red[pi] {
                    red.insert(p, key);
                } else {
                    // Load rule: red onto a white node.
                    while red_len >= self.budget {
                        let victim = red.evict_unpinned(&pinned).ok_or_else(all_pinned)?;
                        in_red[victim as usize] = false;
                        red_len -= 1;
                    }
                    stats.loads += 1;
                    in_red[pi] = true;
                    red_len += 1;
                    red.insert(p, key);
                }
            }
            // Compute rule: white + red on v.
            let key = uses.next_after(vi, t as u32);
            while red_len >= self.budget {
                let victim = red.evict_unpinned(&pinned).ok_or_else(all_pinned)?;
                in_red[victim as usize] = false;
                red_len -= 1;
            }
            white[vi] = true;
            in_red[vi] = true;
            red_len += 1;
            red.insert(v.0, key);
            stats.computes += 1;
            stats.peak_red = stats.peak_red.max(red_len);

            for &p in preds {
                pinned[p as usize] = false;
            }
            pinned[vi] = false;
        }
        Ok(stats)
    }

    /// Best play across the built-in policies.
    pub fn best_play(&self) -> Result<PlayStats, PebbleError> {
        let lru = self.play_program_order(SpillPolicy::Lru)?;
        let min = self.play_program_order(SpillPolicy::MinNextUse)?;
        Ok(if min.loads <= lru.loads { min } else { lru })
    }
}

fn all_pinned() -> PebbleError {
    // All red pebbles pinned: cannot happen when needed ≤ budget.
    PebbleError::InvalidSchedule("all red pebbles pinned".to_string())
}

/// The straightforward ordered-map pebble engine the fast engine is
/// validated against.
///
/// This is the workspace's original implementation, kept verbatim as an
/// executable specification: `HashMap` for the key index, `BTreeSet` for
/// the priority order, linear pinned-skip scans. Property tests assert
/// [`play`](reference::play) and [`PebbleGame::play`] return identical
/// [`PlayStats`] on randomized CDAGs under both policies.
pub mod reference {
    use super::{PebbleError, PlayStats, SpillPolicy};
    use crate::graph::{Cdag, NodeId, NodeKind};
    use std::collections::{BTreeSet, HashMap};

    /// Plays `order` on `cdag` with red budget `budget` — specification
    /// implementation.
    ///
    /// # Errors
    /// Same contract as [`super::PebbleGame::play`].
    pub fn play(
        cdag: &Cdag,
        budget: usize,
        order: &[NodeId],
        policy: SpillPolicy,
    ) -> Result<PlayStats, PebbleError> {
        assert!(budget > 0, "red budget must be positive");
        let n = cdag.len();
        let mut pos = vec![u32::MAX; n];
        for (t, &v) in order.iter().enumerate() {
            if !matches!(cdag.kind(v), NodeKind::Compute { .. }) {
                return Err(PebbleError::InvalidSchedule(format!(
                    "{v:?} is not a compute node"
                )));
            }
            if pos[v.0 as usize] != u32::MAX {
                return Err(PebbleError::InvalidSchedule(format!(
                    "{v:?} scheduled twice"
                )));
            }
            pos[v.0 as usize] = t as u32;
        }
        if order.len() != cdag.num_computes() {
            return Err(PebbleError::InvalidSchedule(format!(
                "{} of {} compute nodes scheduled",
                order.len(),
                cdag.num_computes()
            )));
        }

        let mut uses: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (t, &v) in order.iter().enumerate() {
            for &p in cdag.preds(v) {
                uses[p as usize].push(t as u32);
            }
        }
        let mut use_ptr = vec![0usize; n];
        let next_use =
            |uses: &Vec<Vec<u32>>, use_ptr: &mut Vec<usize>, v: usize, now: u32| -> u64 {
                let list = &uses[v];
                let mut i = use_ptr[v];
                while i < list.len() && list[i] <= now {
                    i += 1;
                }
                use_ptr[v] = i;
                if i < list.len() {
                    list[i] as u64
                } else {
                    u64::MAX
                }
            };

        let mut white = vec![false; n];
        for v in cdag.input_nodes() {
            white[v.0 as usize] = true;
        }
        let mut red_key: HashMap<u32, u64> = HashMap::new();
        let mut red_set: BTreeSet<(u64, u32)> = BTreeSet::new();
        let mut pinned: Vec<bool> = vec![false; n];
        let mut stats = PlayStats {
            loads: 0,
            computes: 0,
            peak_red: 0,
        };
        let mut clock: u64 = 0;

        // Priority key per policy; eviction takes the *worst* key.
        // LRU: key = last-use clock, evict smallest.
        // MIN: key = next-use position, evict largest (u64::MAX = dead).
        let touch = |red_key: &mut HashMap<u32, u64>,
                     red_set: &mut BTreeSet<(u64, u32)>,
                     v: u32,
                     key: u64| {
            if let Some(old) = red_key.insert(v, key) {
                red_set.remove(&(old, v));
            }
            red_set.insert((key, v));
        };

        for (t, &v) in order.iter().enumerate() {
            let vi = v.0 as usize;
            let preds = cdag.preds(v);
            let needed = preds.len() + 1;
            if needed > budget {
                return Err(PebbleError::CapacityTooSmall {
                    node: v,
                    needed,
                    budget,
                });
            }
            for &p in preds {
                pinned[p as usize] = true;
            }
            pinned[vi] = true;

            for &p in preds {
                let pi = p as usize;
                if !white[pi] {
                    return Err(PebbleError::PredecessorNotComputed {
                        node: v,
                        pred: NodeId(p),
                    });
                }
                clock += 1;
                let key = match policy {
                    SpillPolicy::Lru => clock,
                    SpillPolicy::MinNextUse => next_use(&uses, &mut use_ptr, pi, t as u32),
                };
                if red_key.contains_key(&p) {
                    touch(&mut red_key, &mut red_set, p, key);
                } else {
                    make_room(budget, &mut red_key, &mut red_set, &pinned, policy)?;
                    stats.loads += 1;
                    touch(&mut red_key, &mut red_set, p, key);
                }
            }
            clock += 1;
            let key = match policy {
                SpillPolicy::Lru => clock,
                SpillPolicy::MinNextUse => next_use(&uses, &mut use_ptr, vi, t as u32),
            };
            make_room(budget, &mut red_key, &mut red_set, &pinned, policy)?;
            white[vi] = true;
            touch(&mut red_key, &mut red_set, v.0, key);
            stats.computes += 1;
            stats.peak_red = stats.peak_red.max(red_set.len());

            for &p in preds {
                pinned[p as usize] = false;
            }
            pinned[vi] = false;
        }
        Ok(stats)
    }

    fn make_room(
        budget: usize,
        red_key: &mut HashMap<u32, u64>,
        red_set: &mut BTreeSet<(u64, u32)>,
        pinned: &[bool],
        policy: SpillPolicy,
    ) -> Result<(), PebbleError> {
        while red_set.len() >= budget {
            let victim = match policy {
                SpillPolicy::Lru => red_set.iter().find(|(_, v)| !pinned[*v as usize]).copied(),
                SpillPolicy::MinNextUse => red_set
                    .iter()
                    .rev()
                    .find(|(_, v)| !pinned[*v as usize])
                    .copied(),
            };
            let Some((key, v)) = victim else {
                return Err(PebbleError::InvalidSchedule(
                    "all red pebbles pinned".to_string(),
                ));
            };
            red_set.remove(&(key, v));
            red_key.remove(&v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cdag;
    use iolb_ir::{Access, ProgramBuilder};

    /// Sum reduction over N inputs.
    fn reduction(n: i64) -> (iolb_ir::Program, Cdag) {
        let mut b = ProgramBuilder::new("pebble_red", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let acc = b.scalar("acc");
        let wa = Access::new(acc, vec![]);
        b.stmt("Z", vec![], vec![wa.clone()], move |c| c.wr(acc, &[], 0.0));
        let i = b.open("i", b.c(0), b.p("N"));
        let xi = Access::new(x, vec![b.d(i)]);
        b.stmt("S", vec![xi, wa.clone()], vec![wa], move |c| {
            let v = c.rd(x, &[c.v(0)]) + c.rd(acc, &[]);
            c.wr(acc, &[], v);
        });
        b.close();
        let p = b.finish();
        let g = build_cdag(&p, &[n]);
        (p, g)
    }

    #[test]
    fn reduction_loads_each_input_once() {
        let (_, g) = reduction(10);
        let game = PebbleGame::new(&g, 3);
        let stats = game.play_program_order(SpillPolicy::Lru).unwrap();
        // Each x[i] loaded exactly once; acc chain stays red.
        assert_eq!(stats.loads, 10);
        assert_eq!(stats.computes, 11);
        assert!(stats.peak_red <= 3);
    }

    #[test]
    fn capacity_too_small_detected() {
        let (_, g) = reduction(4);
        let game = PebbleGame::new(&g, 1);
        let err = game.play_program_order(SpillPolicy::Lru).unwrap_err();
        assert!(matches!(err, PebbleError::CapacityTooSmall { .. }));
    }

    #[test]
    fn thrashing_when_budget_is_tight() {
        // Two interleaved reductions over the same inputs would thrash, but a
        // simpler witness: re-reading x via two passes.
        let mut b = ProgramBuilder::new("pebble_two_pass", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let acc = b.scalar("acc");
        let wa = Access::new(acc, vec![]);
        b.stmt("Z", vec![], vec![wa.clone()], move |c| c.wr(acc, &[], 0.0));
        for pass in 0..2 {
            let i = b.open("i", b.c(0), b.p("N"));
            let xi = Access::new(x, vec![b.d(i)]);
            let name = format!("S{pass}");
            b.stmt(&name, vec![xi, wa.clone()], vec![wa.clone()], move |c| {
                let v = c.rd(x, &[c.v(0)]) + c.rd(acc, &[]);
                c.wr(acc, &[], v);
            });
            b.close();
        }
        let p = b.finish();
        let g = build_cdag(&p, &[6]);
        // Budget 3: inputs cannot stay resident between passes → 12 loads.
        let tight = PebbleGame::new(&g, 3)
            .play_program_order(SpillPolicy::Lru)
            .unwrap();
        assert_eq!(tight.loads, 12);
        // Budget 8 with the MIN policy keeps all 6 inputs resident (dead
        // chain nodes are spilled first) → 6 loads.
        let roomy = PebbleGame::new(&g, 8)
            .play_program_order(SpillPolicy::MinNextUse)
            .unwrap();
        assert_eq!(roomy.loads, 6);
    }

    #[test]
    fn min_policy_not_worse_than_lru() {
        let (_, g) = reduction(12);
        for s in 3..7 {
            let game = PebbleGame::new(&g, s);
            let lru = game.play_program_order(SpillPolicy::Lru).unwrap();
            let min = game.play_program_order(SpillPolicy::MinNextUse).unwrap();
            assert!(min.loads <= lru.loads, "S={s}");
        }
    }

    #[test]
    fn invalid_schedules_rejected() {
        let (p, g) = reduction(3);
        let s = p.stmt_id("S").unwrap();
        let n2 = g.node_of(s, &[2]).unwrap();
        let game = PebbleGame::new(&g, 4);
        // Missing nodes.
        let err = game.play(&[n2], SpillPolicy::Lru).unwrap_err();
        assert!(matches!(err, PebbleError::InvalidSchedule(_)));
        // Non-topological: S[2] before its predecessors.
        let mut order: Vec<NodeId> = g.compute_nodes().collect();
        let last = order.len() - 1;
        order.swap(0, last);
        let err = game.play(&order, SpillPolicy::Lru).unwrap_err();
        assert!(matches!(err, PebbleError::PredecessorNotComputed { .. }));
    }

    #[test]
    fn loads_monotone_in_budget() {
        let (_, g) = reduction(16);
        let mut prev = u64::MAX;
        for s in 3..9 {
            let stats = PebbleGame::new(&g, s)
                .play_program_order(SpillPolicy::MinNextUse)
                .unwrap();
            assert!(stats.loads <= prev, "loads should not grow with S");
            prev = stats.loads;
        }
    }

    #[test]
    fn engines_agree_on_reductions() {
        for n in [4i64, 9, 16] {
            let (_, g) = reduction(n);
            let order: Vec<NodeId> = g.compute_nodes().collect();
            for s in 3..8 {
                for policy in [SpillPolicy::Lru, SpillPolicy::MinNextUse] {
                    let fast = PebbleGame::new(&g, s).play(&order, policy).unwrap();
                    let slow = reference::play(&g, s, &order, policy).unwrap();
                    assert_eq!(fast, slow, "N={n} S={s} {policy:?}");
                }
            }
        }
    }
}
