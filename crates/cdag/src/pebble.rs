//! The red-white pebble game (Olivry et al., adopted by the paper in §2).
//!
//! Rules implemented exactly as stated:
//!
//! * white pebbles start on the inputs; at most `S` red pebbles exist;
//! * **Load** places a red pebble on a white-pebbled node (this is the
//!   counted I/O);
//! * **Compute** places white+red on a node whose predecessors are all red
//!   (no recomputation: once white, never computed again);
//! * **Spill** removes a red pebble (free — the bound only counts loads).
//!
//! [`PebbleGame::play`] turns a topological schedule into a valid play: it
//! loads missing predecessor pebbles on demand and spills with a pluggable
//! policy (LRU or farthest-next-use) when the red budget is exhausted. The
//! resulting load count is achieved by a *legal* play, so every correct
//! lower bound must sit at or below it — the workspace's empirical
//! validation of `iolb-core`'s derivations.

use crate::graph::{Cdag, NodeId, NodeKind};
use std::collections::{BTreeSet, HashMap};

/// Spill (red-pebble replacement) policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Spill the least-recently-used red pebble.
    Lru,
    /// Spill the red pebble whose next use in the schedule is farthest
    /// (Belady-style MIN; optimal among demand policies for a fixed order).
    MinNextUse,
}

/// Outcome of a legal play.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayStats {
    /// Number of Load moves (the I/O cost of the play).
    pub loads: u64,
    /// Number of Compute moves.
    pub computes: u64,
    /// Peak number of red pebbles in use.
    pub peak_red: usize,
}

/// Why a play could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PebbleError {
    /// A node needs `indegree + 1` red pebbles, more than `S`.
    CapacityTooSmall {
        /// Offending node.
        node: NodeId,
        /// Red pebbles required simultaneously.
        needed: usize,
        /// Budget available.
        budget: usize,
    },
    /// Schedule uses a predecessor that has no white pebble yet.
    PredecessorNotComputed {
        /// Node being computed.
        node: NodeId,
        /// Its not-yet-white predecessor.
        pred: NodeId,
    },
    /// Schedule computes a node twice or misses nodes.
    InvalidSchedule(String),
}

impl std::fmt::Display for PebbleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PebbleError::CapacityTooSmall { node, needed, budget } => write!(
                f,
                "node {node:?} needs {needed} red pebbles but S = {budget}"
            ),
            PebbleError::PredecessorNotComputed { node, pred } => {
                write!(f, "schedule computes {node:?} before predecessor {pred:?}")
            }
            PebbleError::InvalidSchedule(s) => write!(f, "invalid schedule: {s}"),
        }
    }
}

impl std::error::Error for PebbleError {}

/// A red-white pebble game on one CDAG with red budget `S`.
#[derive(Debug)]
pub struct PebbleGame<'g> {
    cdag: &'g Cdag,
    budget: usize,
}

impl<'g> PebbleGame<'g> {
    /// Creates a game with red budget `s`.
    ///
    /// # Panics
    /// Panics when `s == 0`.
    pub fn new(cdag: &'g Cdag, s: usize) -> PebbleGame<'g> {
        assert!(s > 0, "red budget must be positive");
        PebbleGame { cdag, budget: s }
    }

    /// Plays the compute nodes in schedule order (node-id order) — the
    /// program's own sequential schedule.
    pub fn play_program_order(&self, policy: SpillPolicy) -> Result<PlayStats, PebbleError> {
        let order: Vec<NodeId> = self.cdag.compute_nodes().collect();
        self.play(&order, policy)
    }

    /// Plays an arbitrary schedule of all compute nodes.
    ///
    /// # Errors
    /// Fails when the schedule is not a permutation of the compute nodes,
    /// is not topological, or when `S` cannot hold a node's inputs.
    pub fn play(&self, order: &[NodeId], policy: SpillPolicy) -> Result<PlayStats, PebbleError> {
        let n = self.cdag.len();
        // Schedule sanity: a permutation of compute nodes.
        let mut pos = vec![u32::MAX; n];
        for (t, &v) in order.iter().enumerate() {
            if !matches!(self.cdag.kind(v), NodeKind::Compute { .. }) {
                return Err(PebbleError::InvalidSchedule(format!(
                    "{v:?} is not a compute node"
                )));
            }
            if pos[v.0 as usize] != u32::MAX {
                return Err(PebbleError::InvalidSchedule(format!(
                    "{v:?} scheduled twice"
                )));
            }
            pos[v.0 as usize] = t as u32;
        }
        if order.len() != self.cdag.num_computes() {
            return Err(PebbleError::InvalidSchedule(format!(
                "{} of {} compute nodes scheduled",
                order.len(),
                self.cdag.num_computes()
            )));
        }

        // Next-use positions (for MIN): uses[v] = schedule times where v is a
        // predecessor of the computed node.
        let mut uses: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (t, &v) in order.iter().enumerate() {
            for &p in self.cdag.preds(v) {
                uses[p as usize].push(t as u32);
            }
        }
        let mut use_ptr = vec![0usize; n];
        let next_use = |uses: &Vec<Vec<u32>>, use_ptr: &mut Vec<usize>, v: usize, now: u32| -> u64 {
            let list = &uses[v];
            let mut i = use_ptr[v];
            while i < list.len() && list[i] <= now {
                i += 1;
            }
            use_ptr[v] = i;
            if i < list.len() {
                list[i] as u64
            } else {
                u64::MAX
            }
        };

        let mut white = vec![false; n];
        for v in self.cdag.input_nodes() {
            white[v.0 as usize] = true;
        }
        // Red set ordered by spill priority key.
        let mut red_key: HashMap<u32, u64> = HashMap::new();
        let mut red_set: BTreeSet<(u64, u32)> = BTreeSet::new();
        let mut pinned: Vec<bool> = vec![false; n];
        let mut stats = PlayStats {
            loads: 0,
            computes: 0,
            peak_red: 0,
        };
        let mut clock: u64 = 0;

        // Priority key per policy; eviction takes the *worst* key.
        // LRU: key = last-use clock, evict smallest.
        // MIN: key = next-use position, evict largest (u64::MAX = dead).
        let touch = |red_key: &mut HashMap<u32, u64>,
                         red_set: &mut BTreeSet<(u64, u32)>,
                         v: u32,
                         key: u64| {
            if let Some(old) = red_key.insert(v, key) {
                red_set.remove(&(old, v));
            }
            red_set.insert((key, v));
        };

        for (t, &v) in order.iter().enumerate() {
            let vi = v.0 as usize;
            let preds = self.cdag.preds(v);
            let needed = preds.len() + 1;
            if needed > self.budget {
                return Err(PebbleError::CapacityTooSmall {
                    node: v,
                    needed,
                    budget: self.budget,
                });
            }
            // Pin inputs of v (and v) against spilling while staging.
            for &p in preds {
                pinned[p as usize] = true;
            }
            pinned[vi] = true;

            for &p in preds {
                let pi = p as usize;
                if !white[pi] {
                    return Err(PebbleError::PredecessorNotComputed {
                        node: v,
                        pred: NodeId(p),
                    });
                }
                clock += 1;
                let key = match policy {
                    SpillPolicy::Lru => clock,
                    SpillPolicy::MinNextUse => next_use(&uses, &mut use_ptr, pi, t as u32),
                };
                if red_key.contains_key(&p) {
                    touch(&mut red_key, &mut red_set, p, key);
                } else {
                    // Load rule: red onto a white node.
                    Self::make_room(self.budget, &mut red_key, &mut red_set, &pinned, policy)?;
                    stats.loads += 1;
                    touch(&mut red_key, &mut red_set, p, key);
                }
            }
            // Compute rule: white + red on v.
            clock += 1;
            let key = match policy {
                SpillPolicy::Lru => clock,
                SpillPolicy::MinNextUse => next_use(&uses, &mut use_ptr, vi, t as u32),
            };
            Self::make_room(self.budget, &mut red_key, &mut red_set, &pinned, policy)?;
            white[vi] = true;
            touch(&mut red_key, &mut red_set, v.0, key);
            stats.computes += 1;
            stats.peak_red = stats.peak_red.max(red_set.len());

            for &p in preds {
                pinned[p as usize] = false;
            }
            pinned[vi] = false;
        }
        Ok(stats)
    }

    fn make_room(
        budget: usize,
        red_key: &mut HashMap<u32, u64>,
        red_set: &mut BTreeSet<(u64, u32)>,
        pinned: &[bool],
        policy: SpillPolicy,
    ) -> Result<(), PebbleError> {
        while red_set.len() >= budget {
            // Evict by policy, skipping pinned nodes.
            let victim = match policy {
                SpillPolicy::Lru => red_set
                    .iter()
                    .find(|(_, v)| !pinned[*v as usize])
                    .copied(),
                SpillPolicy::MinNextUse => red_set
                    .iter()
                    .rev()
                    .find(|(_, v)| !pinned[*v as usize])
                    .copied(),
            };
            let Some((key, v)) = victim else {
                // All red pebbles pinned: cannot happen when needed ≤ budget.
                return Err(PebbleError::InvalidSchedule(
                    "all red pebbles pinned".to_string(),
                ));
            };
            red_set.remove(&(key, v));
            red_key.remove(&v);
        }
        Ok(())
    }

    /// Best play across the built-in policies.
    pub fn best_play(&self) -> Result<PlayStats, PebbleError> {
        let lru = self.play_program_order(SpillPolicy::Lru)?;
        let min = self.play_program_order(SpillPolicy::MinNextUse)?;
        Ok(if min.loads <= lru.loads { min } else { lru })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cdag;
    use iolb_ir::{Access, ProgramBuilder};

    /// Sum reduction over N inputs.
    fn reduction(n: i64) -> (iolb_ir::Program, Cdag) {
        let mut b = ProgramBuilder::new("pebble_red", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let acc = b.scalar("acc");
        let wa = Access::new(acc, vec![]);
        b.stmt("Z", vec![], vec![wa.clone()], move |c| c.wr(acc, &[], 0.0));
        let i = b.open("i", b.c(0), b.p("N"));
        let xi = Access::new(x, vec![b.d(i)]);
        b.stmt("S", vec![xi, wa.clone()], vec![wa], move |c| {
            let v = c.rd(x, &[c.v(0)]) + c.rd(acc, &[]);
            c.wr(acc, &[], v);
        });
        b.close();
        let p = b.finish();
        let g = build_cdag(&p, &[n]);
        (p, g)
    }

    #[test]
    fn reduction_loads_each_input_once() {
        let (_, g) = reduction(10);
        let game = PebbleGame::new(&g, 3);
        let stats = game.play_program_order(SpillPolicy::Lru).unwrap();
        // Each x[i] loaded exactly once; acc chain stays red.
        assert_eq!(stats.loads, 10);
        assert_eq!(stats.computes, 11);
        assert!(stats.peak_red <= 3);
    }

    #[test]
    fn capacity_too_small_detected() {
        let (_, g) = reduction(4);
        let game = PebbleGame::new(&g, 1);
        let err = game.play_program_order(SpillPolicy::Lru).unwrap_err();
        assert!(matches!(err, PebbleError::CapacityTooSmall { .. }));
    }

    #[test]
    fn thrashing_when_budget_is_tight() {
        // Two interleaved reductions over the same inputs would thrash, but a
        // simpler witness: re-reading x via two passes.
        let mut b = ProgramBuilder::new("pebble_two_pass", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let acc = b.scalar("acc");
        let wa = Access::new(acc, vec![]);
        b.stmt("Z", vec![], vec![wa.clone()], move |c| c.wr(acc, &[], 0.0));
        for pass in 0..2 {
            let i = b.open("i", b.c(0), b.p("N"));
            let xi = Access::new(x, vec![b.d(i)]);
            let name = format!("S{pass}");
            b.stmt(&name, vec![xi, wa.clone()], vec![wa.clone()], move |c| {
                let v = c.rd(x, &[c.v(0)]) + c.rd(acc, &[]);
                c.wr(acc, &[], v);
            });
            b.close();
        }
        let p = b.finish();
        let g = build_cdag(&p, &[6]);
        // Budget 3: inputs cannot stay resident between passes → 12 loads.
        let tight = PebbleGame::new(&g, 3).play_program_order(SpillPolicy::Lru).unwrap();
        assert_eq!(tight.loads, 12);
        // Budget 8 with the MIN policy keeps all 6 inputs resident (dead
        // chain nodes are spilled first) → 6 loads.
        let roomy = PebbleGame::new(&g, 8)
            .play_program_order(SpillPolicy::MinNextUse)
            .unwrap();
        assert_eq!(roomy.loads, 6);
    }

    #[test]
    fn min_policy_not_worse_than_lru() {
        let (_, g) = reduction(12);
        for s in 3..7 {
            let game = PebbleGame::new(&g, s);
            let lru = game.play_program_order(SpillPolicy::Lru).unwrap();
            let min = game.play_program_order(SpillPolicy::MinNextUse).unwrap();
            assert!(min.loads <= lru.loads, "S={s}");
        }
    }

    #[test]
    fn invalid_schedules_rejected() {
        let (p, g) = reduction(3);
        let s = p.stmt_id("S").unwrap();
        let n2 = g.node_of(s, &[2]).unwrap();
        let game = PebbleGame::new(&g, 4);
        // Missing nodes.
        let err = game.play(&[n2], SpillPolicy::Lru).unwrap_err();
        assert!(matches!(err, PebbleError::InvalidSchedule(_)));
        // Non-topological: S[2] before its predecessors.
        let mut order: Vec<NodeId> = g.compute_nodes().collect();
        let last = order.len() - 1;
        order.swap(0, last);
        let err = game.play(&order, SpillPolicy::Lru).unwrap_err();
        assert!(matches!(err, PebbleError::PredecessorNotComputed { .. }));
    }

    #[test]
    fn loads_monotone_in_budget() {
        let (_, g) = reduction(16);
        let mut prev = u64::MAX;
        for s in 3..9 {
            let stats = PebbleGame::new(&g, s)
                .play_program_order(SpillPolicy::MinNextUse)
                .unwrap();
            assert!(stats.loads <= prev, "loads should not grow with S");
            prev = stats.loads;
        }
    }
}
