//! Property tests: the slab/bucket pebble engine must be *indistinguishable*
//! from the straightforward ordered-map reference engine.
//!
//! The fast engine ([`PebbleGame::play`]) replaces the reference's
//! `HashMap` + `BTreeSet` red set with an intrusive LRU list and a
//! next-use-bucketed bitmap structure; these tests assert both produce
//! identical [`PlayStats`] — loads, computes, and peak residency — on
//! randomized small CDAGs under both spill policies, plus the MIN ≤ LRU
//! optimality invariant.

use iolb_cdag::pebble::reference;
use iolb_cdag::{Cdag, NodeId, NodeSpec, PebbleGame, SpillPolicy};
use iolb_ir::{ArrayId, StmtId};
use proptest::prelude::*;
use rand::prelude::*;

/// Builds a random layered CDAG: `n_inputs` input nodes followed by
/// `n_computes` compute nodes in schedule order, each compute drawing up to
/// `max_preds` predecessors from strictly earlier nodes.
fn random_cdag(seed: u64, n_inputs: usize, n_computes: usize, max_preds: usize) -> Cdag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kinds = Vec::with_capacity(n_inputs + n_computes);
    for f in 0..n_inputs {
        kinds.push(NodeSpec::Input {
            array: ArrayId(0),
            flat: f,
        });
    }
    for c in 0..n_computes {
        kinds.push(NodeSpec::Compute {
            stmt: StmtId(0),
            iv: vec![c as i32].into(),
        });
    }
    let mut edges = Vec::new();
    for c in 0..n_computes {
        let id = (n_inputs + c) as u32;
        let k = rng.gen_range(0..=max_preds.min(n_inputs + c));
        for _ in 0..k {
            let p = rng.gen_range(0..n_inputs + c) as u32;
            edges.push((p, id));
        }
    }
    Cdag::from_edges(kinds, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast engine == reference engine, both policies, many budgets.
    #[test]
    fn engines_produce_identical_stats(
        seed in 0u64..1_000_000,
        n_inputs in 1usize..6,
        n_computes in 1usize..40,
        max_preds in 0usize..4,
    ) {
        let g = random_cdag(seed, n_inputs, n_computes, max_preds);
        let order: Vec<NodeId> = g.compute_nodes().collect();
        let min_s = g.max_in_degree() + 1;
        for s in min_s..min_s + 5 {
            for policy in [SpillPolicy::Lru, SpillPolicy::MinNextUse] {
                let fast = PebbleGame::new(&g, s).play(&order, policy);
                let slow = reference::play(&g, s, &order, policy);
                prop_assert_eq!(
                    &fast, &slow,
                    "seed={} n={}+{} maxp={} S={} {:?}",
                    seed, n_inputs, n_computes, max_preds, s, policy
                );
            }
        }
    }

    /// MIN (farthest next use) never loads more than LRU on the same play.
    #[test]
    fn min_policy_never_beaten_by_lru(
        seed in 0u64..1_000_000,
        n_computes in 1usize..40,
    ) {
        let g = random_cdag(seed, 4, n_computes, 3);
        let min_s = g.max_in_degree() + 1;
        for s in [min_s, min_s + 2, min_s + 7] {
            let game = PebbleGame::new(&g, s);
            let lru = game.play_program_order(SpillPolicy::Lru).unwrap();
            let min = game.play_program_order(SpillPolicy::MinNextUse).unwrap();
            prop_assert!(min.loads <= lru.loads, "seed={seed} S={s}");
        }
    }

    /// Loads are monotone non-increasing in the red budget (both engines'
    /// MIN policy is a demand stack algorithm for a fixed order).
    #[test]
    fn min_loads_monotone_in_budget(
        seed in 0u64..1_000_000,
        n_computes in 1usize..30,
    ) {
        let g = random_cdag(seed, 3, n_computes, 3);
        let min_s = g.max_in_degree() + 1;
        let mut prev = u64::MAX;
        for s in min_s..min_s + 6 {
            let stats = PebbleGame::new(&g, s)
                .play_program_order(SpillPolicy::MinNextUse)
                .unwrap();
            prop_assert!(stats.loads <= prev, "seed={seed} S={s}");
            prev = stats.loads;
        }
    }

    /// Model bridge: the MIN miss curve of the program-order value-access
    /// trace lower-bounds *every* legal play's loads (a play's pebble
    /// moves are one valid replacement schedule for the trace; optimal
    /// replacement can only do better), and the LRU curve is bitwise the
    /// `LruSim`/`BeladySim` replay of the same trace at every budget.
    #[test]
    fn trace_curves_bound_pebble_plays(
        seed in 0u64..1_000_000,
        n_inputs in 1usize..6,
        n_computes in 1usize..40,
        max_preds in 0usize..4,
    ) {
        let g = random_cdag(seed, n_inputs, n_computes, max_preds);
        let min_s = g.max_in_degree() + 1;
        let mut trace = Vec::new();
        g.packed_program_order_trace(&mut trace);
        let horizon = min_s + 8;
        let mut eng = iolb_memsim::CurveEngine::new();
        let opt = eng.opt_packed(&trace, horizon);
        let lru = eng.lru_packed(&trace, horizon);
        for s in min_s..min_s + 8 {
            let play_min = PebbleGame::new(&g, s)
                .play_program_order(SpillPolicy::MinNextUse)
                .unwrap();
            prop_assert!(
                opt.loads(s) <= play_min.loads,
                "seed={seed} S={s}: trace OPT {} > pebble MIN play {}",
                opt.loads(s),
                play_min.loads
            );
            let mut sim = iolb_memsim::LruSim::new(s);
            prop_assert_eq!(sim.run_packed(&trace).loads, lru.loads(s));
            prop_assert_eq!(
                iolb_memsim::BeladySim::new(s).run_packed(&trace).loads,
                opt.loads(s)
            );
        }
    }
}

/// On every paper kernel: both engines agree at several budgets, MIN ≤ LRU,
/// and every play's loads bound the derived bounds from above (soundness is
/// asserted against the real derivation in `iolb-bench`'s sweep; here we
/// assert the engines' mutual consistency on real kernel CDAGs).
#[test]
fn engines_agree_on_all_paper_kernels() {
    let cases: Vec<(iolb_ir::Program, Vec<i64>)> = vec![
        (iolb_kernels::mgs::program(), vec![12, 6]),
        (iolb_kernels::householder::a2v_program(), vec![12, 6]),
        (iolb_kernels::householder::v2q_program(), vec![12, 6]),
        (iolb_kernels::gebd2::program(), vec![10, 5]),
        (iolb_kernels::gehd2::program(), vec![9]),
        (iolb_kernels::gemm::program(), vec![6, 6, 6]),
    ];
    for (program, params) in cases {
        let g = iolb_cdag::build_cdag(&program, &params);
        let order: Vec<NodeId> = g.compute_nodes().collect();
        let min_s = g.max_in_degree() + 1;
        for s in [min_s, min_s + 3, min_s + 11] {
            for policy in [SpillPolicy::Lru, SpillPolicy::MinNextUse] {
                let fast = PebbleGame::new(&g, s).play(&order, policy).unwrap();
                let slow = reference::play(&g, s, &order, policy).unwrap();
                assert_eq!(fast, slow, "{} S={s} {policy:?}", program.name);
            }
            let lru = PebbleGame::new(&g, s)
                .play_program_order(SpillPolicy::Lru)
                .unwrap();
            let min = PebbleGame::new(&g, s)
                .play_program_order(SpillPolicy::MinNextUse)
                .unwrap();
            assert!(min.loads <= lru.loads, "{} S={s}", program.name);
        }
    }
}
