//! Empirical check of Lemma 3 (the structural core of the paper's proof)
//! on exact CDAGs: a *convex* set containing hourglass-statement instances
//! at temporal iterations k and k+2 (same neutral j) must contain an entire
//! reduction/broadcast line in between — `|φ_i(E′_{j,k+1})| ≥ W`.

use iolb_cdag::{build_cdag, Cdag, NodeId, NodeKind};
use iolb_ir::{Access, Program, ProgramBuilder, StmtId};
use std::collections::BTreeSet;

/// Miniature MGS core (SR/SU cycle) — same shape as the paper's Fig. 2.
fn mini_mgs() -> Program {
    let mut b = ProgramBuilder::new("lemma3_mgs", &["M", "N"]);
    let a = b.array("A", &[b.p("M"), b.p("N")]);
    let r = b.array("R", &[b.p("N"), b.p("N")]);
    let k = b.open("k", b.c(0), b.p("N"));
    let j = b.open("j", b.d(k) + 1, b.p("N"));
    let w_r = Access::new(r, vec![b.d(k), b.d(j)]);
    b.stmt("S0", vec![], vec![w_r.clone()], move |c| {
        c.wr(r, &[c.v(0), c.v(1)], 0.0)
    });
    let i1 = b.open("i", b.c(0), b.p("M"));
    let rd_aik = Access::new(a, vec![b.d(i1), b.d(k)]);
    let rd_aij = Access::new(a, vec![b.d(i1), b.d(j)]);
    b.stmt(
        "SR",
        vec![rd_aik, rd_aij, w_r.clone()],
        vec![w_r.clone()],
        move |c| {
            let (k, j, i) = (c.v(0), c.v(1), c.v(2));
            let v = c.rd(a, &[i, k]) * c.rd(a, &[i, j]) + c.rd(r, &[k, j]);
            c.wr(r, &[k, j], v);
        },
    );
    b.close();
    let i2 = b.open("i", b.c(0), b.p("M"));
    let rd_aik2 = Access::new(a, vec![b.d(i2), b.d(k)]);
    let rw_aij2 = Access::new(a, vec![b.d(i2), b.d(j)]);
    b.stmt(
        "SU",
        vec![rd_aik2, rw_aij2.clone(), w_r.clone()],
        vec![rw_aij2],
        move |c| {
            let (k, j, i) = (c.v(0), c.v(1), c.v(2));
            let v = c.rd(a, &[i, j]) - c.rd(a, &[i, k]) * c.rd(r, &[k, j]);
            c.wr(a, &[i, j], v);
        },
    );
    b.close();
    b.close();
    b.close();
    b.finish()
}

fn nodes_of(g: &Cdag, stmt: StmtId, pred: impl Fn(&[i32]) -> bool) -> Vec<NodeId> {
    (0..g.len() as u32)
        .map(NodeId)
        .filter(|v| match g.kind(*v) {
            NodeKind::Compute { stmt: s, iv } if s == stmt => pred(iv),
            _ => false,
        })
        .collect()
}

#[test]
fn convex_closure_spanning_two_ticks_contains_full_lines() {
    let (m, n) = (7i64, 5i64);
    let p = mini_mgs();
    let g = build_cdag(&p, &[m, n]);
    let su = p.stmt_id("SU").unwrap();
    let sr = p.stmt_id("SR").unwrap();
    // Seed: SU[k=0, j=3, i=0] and SU[k=2, j=3, i=0].
    let seed: BTreeSet<NodeId> = [
        g.node_of(su, &[0, 3, 0]).unwrap(),
        g.node_of(su, &[2, 3, 0]).unwrap(),
    ]
    .into_iter()
    .collect();
    let e = g.convex_closure(&seed);
    assert!(g.is_convex(&e));
    // Lemma 3(2): the slice at the intermediate tick k=1 contains the whole
    // reduction line SR[1, 3, ·] and the whole broadcast line SU[1, 3, ·]:
    // |φ_i| = W = M on both statements.
    for (stmt, name) in [(sr, "SR"), (su, "SU")] {
        let line = nodes_of(&g, stmt, |iv| iv[0] == 1 && iv[1] == 3);
        assert_eq!(line.len(), m as usize, "{name} line has W = M instances");
        for v in line {
            assert!(e.contains(&v), "{name} instance missing from convex set");
        }
    }
    // Lemma 3(1): the j = 3 slice of E is one connected component — every
    // member reaches (or is reached by) the seed chain; spot-check with the
    // in-set being sizeable (≥ W, the paper's |InSet(E′)| > M argument).
    let inset = g.inset(&e);
    assert!(
        inset.len() >= m as usize,
        "inset {} must exceed the width M = {m}",
        inset.len()
    );
}

#[test]
fn flat_sets_avoid_the_width_obligation() {
    // A set confined to a single temporal tick (the F part of §4.1) does
    // NOT need to contain full lines: a 2-element convex subset of one
    // SU line stays 2 elements.
    let p = mini_mgs();
    let g = build_cdag(&p, &[7, 5]);
    let su = p.stmt_id("SU").unwrap();
    let seed: BTreeSet<NodeId> = [
        g.node_of(su, &[1, 3, 0]).unwrap(),
        g.node_of(su, &[1, 3, 1]).unwrap(),
    ]
    .into_iter()
    .collect();
    let e = g.convex_closure(&seed);
    // No dependency chain links same-tick SU instances of different i.
    assert_eq!(e.len(), 2, "flat slice stays flat: {e:?}");
    assert!(g.is_convex(&e));
}

#[test]
fn hourglass_chain_count_matches_paper_width() {
    // §3.2's width statement for MGS: the chains between SU[k,j,i] and
    // SU[k+2,j,i] pass through 2M statement instances (SR[k+1,j,·] and
    // SU[k+1,j,·]).
    let (m, n) = (6i64, 5i64);
    let p = mini_mgs();
    let g = build_cdag(&p, &[m, n]);
    let su = p.stmt_id("SU").unwrap();
    let sr = p.stmt_id("SR").unwrap();
    // Endpoints at i = 0 so the serialized R-accumulation chain at the
    // intermediate tick is fully between them.
    let a = g.node_of(su, &[0, 4, 0]).unwrap();
    let b = g.node_of(su, &[2, 4, 0]).unwrap();
    // Nodes on a-to-b chains at the strictly intermediate tick k = 1
    // (the paper counts the instances *between* the two endpoints).
    let mut on_chain = 0usize;
    for v in 0..g.len() as u32 {
        let v = NodeId(v);
        if g.has_path(a, v) && g.has_path(v, b) && v != a && v != b {
            if let NodeKind::Compute { stmt, iv } = g.kind(v) {
                if (stmt == su || stmt == sr) && iv[0] == 1 {
                    on_chain += 1;
                }
            }
        }
    }
    assert_eq!(
        on_chain,
        2 * m as usize,
        "2M = {} SR/SU instances at the intermediate tick of the k→k+2 chains",
        2 * m
    );
}
