//! # hourglass-iolb
//!
//! A from-scratch Rust reproduction of *"Tightening I/O Lower Bounds through
//! the Hourglass Dependency Pattern"* (Eyraud-Dubois, Iooss, Langou,
//! Rastello — SPAA 2024, arXiv:2404.16443).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`numeric`] | exact rationals, rational matrices, exact simplex LP |
//! | [`symbolic`] | multivariate polynomials, Faulhaber summation, bound expressions |
//! | [`ir`] | polyhedral-lite program IR, interpreter, dependence analysis |
//! | [`cdag`] | computational DAGs, red-white pebble game |
//! | [`memsim`] | two-level memory simulator (LRU / Belady-MIN) |
//! | [`kernels`] | MGS, Householder A2V/V2Q, GEBD2, GEHD2, GEMM + tiled variants |
//! | [`core`] | the paper: classical K-partitioning + hourglass bound derivation |
//!
//! ## Quickstart
//!
//! ```
//! use hourglass_iolb::prelude::*;
//!
//! // Derive the MGS bounds of the paper automatically.
//! let program = hourglass_iolb::kernels::mgs::program();
//! let report = analyze_kernel(&program, "MGS", "SU").unwrap();
//! // σ = 3/2: the classical Brascamp–Lieb exponent…
//! assert_eq!(report.old.sigma, Rational::new(3, 2));
//! // …and the tightened hourglass bound M²(N−1)(N−2)/(8(S+M)).
//! let v = report.new.main_tool.eval_ints_f64(&[
//!     (Var::new("M"), 1000),
//!     (Var::new("N"), 100),
//!     (hourglass_iolb::core::s_var(), 500),
//! ]);
//! assert!(v > 0.0);
//! ```

pub use iolb_cdag as cdag;
pub use iolb_core as core;
pub use iolb_ir as ir;
pub use iolb_kernels as kernels;
pub use iolb_memsim as memsim;
pub use iolb_numeric as numeric;
pub use iolb_symbolic as symbolic;

/// Commonly used items in one import.
pub mod prelude {
    pub use iolb_cdag::{build_cdag, PebbleGame, SpillPolicy};
    pub use iolb_core::report::analyze_kernel;
    pub use iolb_core::{Analysis, ClassicalBound, HourglassBound};
    pub use iolb_ir::{Interpreter, Program, ProgramBuilder};
    pub use iolb_memsim::{lru_stats, min_stats, Access, IoStats};
    pub use iolb_numeric::Rational;
    pub use iolb_symbolic::{Expr, Poly, Var};
}
