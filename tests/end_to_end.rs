//! Workspace-level end-to-end test: IR → interpreter → numerics → CDAG →
//! dependence analysis → hourglass detection/certification → derived bound
//! → pebble-game soundness, all on the public facade API.

use hourglass_iolb::cdag::{build_cdag, PebbleGame, SpillPolicy};
use hourglass_iolb::core::{self, report::analyze_kernel};
use hourglass_iolb::kernels::{self, Matrix};
use hourglass_iolb::prelude::*;

#[test]
fn full_pipeline_mgs() {
    let program = kernels::mgs::program();

    // Declared accesses match executed accesses.
    let checked = hourglass_iolb::ir::interp::validate_accesses(&program, &[10, 6]).unwrap();
    assert!(checked > 0);

    // Numerics: the IR really computes a QR factorization.
    let a = Matrix::random(10, 6, 99);
    let store = kernels::exec::run_with_inputs(&program, &[10, 6], &[("A", &a)]);
    let q = kernels::exec::extract_matrix(&program, &[10, 6], &store, "Q");
    let r = kernels::exec::extract_matrix(&program, &[10, 6], &store, "R");
    assert!(q.orthonormality_error() < 1e-10);
    assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);

    // Derivation reproduces the paper's formulas.
    let report = analyze_kernel(&program, "MGS", "SU").unwrap();
    assert_eq!(report.old.sigma, Rational::new(3, 2));
    let env = [
        (Var::new("M"), 1024i128),
        (Var::new("N"), 128),
        (core::s_var(), 256),
    ];
    let new = report.new.main_tool.eval_ints_f64(&env);
    let expect = 1024.0f64 * 1024.0 * 127.0 * 126.0 / (8.0 * (1024.0 + 256.0));
    assert!((new / expect - 1.0).abs() < 1e-12);

    // Pebble soundness through the facade.
    let g = build_cdag(&program, &[16, 8]);
    for s in [8usize, 16, 40] {
        let play = PebbleGame::new(&g, s)
            .play_program_order(SpillPolicy::MinNextUse)
            .unwrap();
        let lb = report
            .new
            .eval_floor(&[(Var::new("M"), 16), (Var::new("N"), 8)], s as i128);
        assert!(lb <= play.loads as f64, "S={s}: {lb} vs {}", play.loads);
    }
}

#[test]
fn upper_and_lower_bounds_sandwich_tiled_mgs() {
    // Theorem 5 LB ≤ measured tiled I/O ≤ O(Appendix A.1 model): tightness.
    let (m, n) = (48usize, 24usize);
    let a = Matrix::random(m, n, 5);
    let report = analyze_kernel(&kernels::mgs::program(), "MGS", "SU").unwrap();
    let tiled = kernels::mgs::tiled_program();
    for s in [256usize, 512, 1024] {
        let block = kernels::mgs::a1_block_size(m, s);
        let params = [m as i64, n as i64, block as i64];
        let data = a.data.clone();
        let min = kernels::sinks::measure_min_io(&tiled, &params, s, move |arr, f| {
            if arr.0 == 0 {
                data[f]
            } else {
                0.0
            }
        });
        let lb = report.new.combined.eval_ints_f64(&[
            (Var::new("M"), m as i128),
            (Var::new("N"), n as i128),
            (core::s_var(), s as i128),
        ]);
        let model = kernels::mgs::a1_reads_model(m, n, block);
        assert!(lb <= min.loads as f64, "S={s}");
        assert!((min.loads as f64) < 3.0 * model, "S={s}");
    }
}

#[test]
fn memsim_agrees_with_pebble_game_ordering() {
    // The LRU cache simulation of the full trace and an LRU pebble play on
    // the CDAG implement the same model from two angles; both must sit
    // above the derived bound and shrink as S grows.
    let program = kernels::mgs::program();
    let params = [16i64, 8];
    let g = build_cdag(&program, &params);
    let mut prev_play = u64::MAX;
    let mut prev_sim = u64::MAX;
    for s in [12usize, 24, 48, 96] {
        let play = PebbleGame::new(&g, s)
            .play_program_order(SpillPolicy::Lru)
            .unwrap();
        let sim = kernels::sinks::measure_lru_io(&program, &params, s, |_, f| f as f64);
        assert!(play.loads <= prev_play);
        assert!(sim.loads <= prev_sim);
        prev_play = play.loads;
        prev_sim = sim.loads;
    }
}

#[test]
fn prelude_surface_is_usable() {
    // Build a custom program through the public builder and derive a bound.
    let mut b = ProgramBuilder::new("user_kernel", &["N"]);
    let x = b.array("x", &[b.p("N")]);
    let acc = b.scalar("acc");
    let wa = hourglass_iolb::ir::Access::new(acc, vec![]);
    b.stmt("Z", vec![], vec![wa.clone()], move |c| c.wr(acc, &[], 0.0));
    let i = b.open("i", b.c(0), b.p("N"));
    let xi = hourglass_iolb::ir::Access::new(x, vec![b.d(i)]);
    b.stmt("S", vec![xi, wa.clone()], vec![wa], move |c| {
        let v = c.rd(x, &[c.v(0)]) + c.rd(acc, &[]);
        c.wr(acc, &[], v);
    });
    b.close();
    let p = b.finish();
    let interp = Interpreter::new(&p, &[10]);
    let store = interp.run_numeric(|a, f| if a.0 == 0 { f as f64 } else { 0.0 });
    assert_eq!(store.data[1][0], 45.0);
    let analysis = Analysis::run(&p, &[vec![10]]).unwrap();
    let su = p.stmt_id("S").unwrap();
    let bound = analysis.classical_bound(su);
    assert!(bound.sigma >= Rational::ONE);
}
