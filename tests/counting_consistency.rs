//! Cross-crate consistency: symbolic instance counting (the barvinok
//! substitute) must agree with exact enumeration for every kernel, and the
//! declared access metadata must match execution at several sizes.

use hourglass_iolb::ir::count::{enumerate_instance_counts, eval_params, instance_count};
use hourglass_iolb::ir::interp::validate_accesses;
use hourglass_iolb::kernels;
use iolb_numeric::Rational;

/// One case: program, parameter grids, and the matching symbolic envs.
type CountCase = (
    iolb_ir::Program,
    Vec<Vec<i64>>,
    Vec<Vec<(&'static str, i64)>>,
);

#[test]
fn symbolic_counts_match_enumeration_everywhere() {
    let cases: Vec<CountCase> = vec![
        (
            kernels::mgs::program(),
            vec![vec![7, 5], vec![10, 6]],
            vec![vec![("M", 7), ("N", 5)], vec![("M", 10), ("N", 6)]],
        ),
        (
            kernels::householder::a2v_program(),
            vec![vec![8, 5], vec![11, 7]],
            vec![vec![("M", 8), ("N", 5)], vec![("M", 11), ("N", 7)]],
        ),
        (
            kernels::householder::v2q_program(),
            vec![vec![8, 5]],
            vec![vec![("M", 8), ("N", 5)]],
        ),
        (
            kernels::gebd2::program(),
            vec![vec![8, 5]],
            vec![vec![("M", 8), ("N", 5)]],
        ),
        (
            kernels::gehd2::program(),
            vec![vec![8]],
            vec![vec![("N", 8)]],
        ),
        (
            kernels::gemm::program(),
            vec![vec![4, 5, 3]],
            vec![vec![("M", 4), ("N", 5), ("K", 3)]],
        ),
    ];
    for (program, param_sets, envs) in cases {
        for (params, env) in param_sets.iter().zip(&envs) {
            let counts = enumerate_instance_counts(&program, params);
            for (sid, &exact) in counts.iter().enumerate() {
                let stmt = iolb_ir::StmtId(sid as u32);
                // GEBD2's guarded statements sit under a min-bounded loop the
                // symbolic counter doesn't support — skip those.
                let countable = program.stmt(stmt).dims.iter().all(|d| {
                    let info = program.loop_info(*d);
                    info.lo.len() == 1
                        && info.hi.len() == 1
                        && matches!(info.step, iolb_ir::LoopStep::One)
                });
                if !countable {
                    continue;
                }
                let sym = eval_params(&instance_count(&program, stmt), env);
                assert_eq!(
                    sym,
                    Rational::int(exact as i128),
                    "{}::{} at {:?}",
                    program.name,
                    program.stmt(stmt).name,
                    params
                );
            }
        }
    }
}

#[test]
fn all_kernels_validate_declared_accesses() {
    let cases: Vec<(iolb_ir::Program, Vec<i64>)> = vec![
        (kernels::mgs::program(), vec![9, 6]),
        (kernels::mgs::tiled_program(), vec![9, 6, 2]),
        (kernels::householder::a2v_program(), vec![9, 6]),
        (kernels::householder::a2v_tiled_program(), vec![9, 6, 2]),
        (kernels::householder::v2q_program(), vec![9, 6]),
        (kernels::gebd2::program(), vec![9, 6]),
        (kernels::gehd2::program(), vec![9]),
        (kernels::gemm::program(), vec![4, 5, 3]),
    ];
    for (program, params) in cases {
        let n = validate_accesses(&program, &params)
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        assert!(n > 0, "{}", program.name);
    }
}
