//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of the criterion API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size`, `throughput`, and [`BenchmarkId`].
//!
//! Measurement model: each sample times `iters` adaptive iterations of the
//! closure (targeting ≥ ~2 ms per sample so short closures are resolvable),
//! reports min / median / max ns per iteration, and optionally elements/s
//! throughput. Results also land in `target/criterion-mini/<group>.txt` so
//! successive runs can be diffed. No statistical regression machinery —
//! honest medians only.

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// (total duration, iterations) per sample.
    samples: Vec<(Duration, u64)>,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`, adaptively batching iterations per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: aim for ≥ 2 ms per sample.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            self.samples.push((t0.elapsed(), iters));
        }
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        self.report(&id.into_id(), &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.into_id(), &b);
        self
    }

    /// Finishes the group (flushes the report file).
    pub fn finish(&mut self) {
        self.criterion.flush(&self.name);
    }

    fn report(&mut self, id: &str, b: &Bencher) {
        let mut per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let (lo, med, hi) = match per_iter.len() {
            0 => (f64::NAN, f64::NAN, f64::NAN),
            n => (per_iter[0], per_iter[n / 2], per_iter[n - 1]),
        };
        let mut line = format!(
            "{}/{:<28} time: [{} {} {}]",
            self.name,
            id,
            fmt_ns(lo),
            fmt_ns(med),
            fmt_ns(hi)
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let eps = n as f64 / (med * 1e-9);
            line.push_str(&format!("  thrpt: {:.3} Melem/s", eps / 1e6));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let bps = n as f64 / (med * 1e-9);
            line.push_str(&format!("  thrpt: {:.3} MiB/s", bps / (1024.0 * 1024.0)));
        }
        println!("{line}");
        self.criterion.lines.push(line);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {
    lines: Vec<String>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (an implicit single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(id.to_string());
        g.bench_function("bench", f);
        g.finish();
        self
    }

    fn flush(&mut self, group: &str) {
        let dir = std::path::Path::new("target").join("criterion-mini");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{}.txt", group.replace('/', "_")));
        if let Ok(mut f) = std::fs::File::create(&path) {
            for l in &self.lines {
                let _ = writeln!(f, "{l}");
            }
        }
        self.lines.clear();
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub_smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).into_id(), "9");
    }
}
