//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_filter_map`, range and tuple strategies,
//! `collection::vec`, `bool::ANY`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Differences from upstream:
//!
//! * no shrinking — a failing case reports the generated inputs verbatim,
//! * the RNG is seeded per test from the test name, so runs are
//!   deterministic and reproducible without a persistence file,
//! * `prop_assume!` skips the case without replacement (counts as passed).

use rand::prelude::*;

/// Test-runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: core::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (rejection sampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Filters and maps in one step (rejection sampling on `None`).
    fn prop_filter_map<U: core::fmt::Debug, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Boxes the strategy (API parity helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed strategy, `Strategy` object with erased type.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: core::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: core::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

const MAX_REJECTS: u32 = 10_000;

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected too many values: {}", self.whence);
    }
}

/// Output of [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U: core::fmt::Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected too many values: {}", self.whence);
    }
}

/// Strategy yielding exactly `self.0`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec()`](fn@vec): an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// `vec(elem, lo..hi)`: vectors of `lo..hi` elements (`vec(elem, n)` for
    /// exactly `n`).
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.0.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Error raised by `prop_assert!` family (test-runner internal).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Outcome of one generated case (test-runner internal).
pub type TestCaseResult = Result<(), TestCaseError>;

#[doc(hidden)]
pub mod runner {
    use super::*;

    /// Drives `cases` random executions of `body`. Used by `proptest!`.
    pub fn run_cases<F: FnMut(&mut StdRng) -> TestCaseResult>(
        cfg: &ProptestConfig,
        test_name: &str,
        mut body: F,
    ) {
        // Deterministic per-test seed: FNV-1a over the test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for case in 0..cfg.cases {
            if let Err(TestCaseError(msg)) = body(&mut rng) {
                panic!("proptest case {case}/{} failed: {msg}", cfg.cases);
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Skips the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No replacement sampling in this offline subset: an assumed-out
            // case simply passes.
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests: `proptest! { #[test] fn f(x in 0..9) { … } }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name($($args)*) $body $($rest)*);
    };
    (@impl ($cfg:expr)) => {};
    (@impl ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::runner::run_cases(&cfg, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
}

/// `use proptest::prelude::*` convenience.
pub mod prelude {
    pub use super::{
        prop_assert, prop_assert_eq, prop_assume, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
    /// Re-export used by strategy signatures.
    pub use rand::rngs::StdRng;
}

pub use rand::rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i128..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in super::collection::vec((0usize..5, super::bool::ANY), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|(c, _)| *c < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_accepted(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        super::runner::run_cases(&ProptestConfig::with_cases(4), "boom", |_rng| {
            prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
