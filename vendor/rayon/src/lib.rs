//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of the rayon API it uses: `par_iter()` / `into_par_iter()`
//! with `map(...).collect::<Vec<_>>()`, [`join`], [`scope`], and
//! [`current_num_threads`]. Parallelism is real — a shared atomic work
//! cursor over `std::thread::scope` workers, one worker per available core —
//! only the work-stealing scheduler and the full adapter zoo are missing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by the parallel bridges.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide high-water mark of workers engaged by the `join` and
/// `map`/`collect` bridges (spawns inside a raw [`scope`] are not
/// counted). Not in real rayon — the shim exposes it so reports can
/// record the pool size genuinely *used* by a run rather than the
/// machine's theoretical parallelism: a 1-item map on a 64-core box
/// engages one worker, and that is what this returns. Being a process
/// global, it reflects the widest stage of the run so far, not the most
/// recent one.
pub fn max_workers_used() -> usize {
    MAX_WORKERS_USED.load(Ordering::Relaxed)
}

static MAX_WORKERS_USED: AtomicUsize = AtomicUsize::new(0);

/// Runs `a` and `b` potentially in parallel, returning both results.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if current_num_threads() > 1 {
        MAX_WORKERS_USED.fetch_max(2, Ordering::Relaxed);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Task scope: `scope(|s| { s.spawn(...); ... })`.
pub fn scope<'env, R>(f: impl for<'scope> FnOnce(&Scope<'scope, 'env>) -> R) -> R {
    std::thread::scope(|std_scope| {
        let s = Scope { std_scope };
        f(&s)
    })
}

/// Scope handle for spawning parallel tasks.
pub struct Scope<'scope, 'env> {
    std_scope: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns a task; the scope waits for it before returning.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, '_>) + Send + 'scope,
    {
        let std_scope = self.std_scope;
        std_scope.spawn(move || {
            let inner = Scope { std_scope };
            f(&inner);
        });
    }
}

/// Parallel counterpart of [`Iterator`] (map/collect subset).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` in parallel, preserving order.
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Pending parallel map.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Executes the map over a worker pool and collects in input order.
    pub fn collect<C: FromParallel<I, F>>(self) -> C {
        C::from_parallel(self)
    }
}

/// Collection types buildable from a [`ParMap`].
pub trait FromParallel<I, F>: Sized {
    /// Runs the parallel map and gathers results.
    fn from_parallel(pm: ParMap<I, F>) -> Self;
}

impl<I: Send, O: Send, F: Fn(I) -> O + Sync> FromParallel<I, F> for Vec<O> {
    fn from_parallel(pm: ParMap<I, F>) -> Vec<O> {
        let ParMap { items, f } = pm;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Move items into Option slots so workers can take them by index.
        let slots: Vec<std::sync::Mutex<Option<I>>> = items
            .into_iter()
            .map(|x| std::sync::Mutex::new(Some(x)))
            .collect();
        let out: Vec<std::sync::Mutex<Option<O>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = current_num_threads().min(n);
        MAX_WORKERS_USED.fetch_max(workers, Ordering::Relaxed);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("poisoned slot")
                        .take()
                        .expect("slot taken twice");
                    let r = f(item);
                    *out[i].lock().expect("poisoned result") = Some(r);
                });
            }
        });
        out.into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("poisoned result")
                    .expect("worker skipped an item")
            })
            .collect()
    }
}

/// Types with a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send;
    /// `iter()` counterpart.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// `into_iter()` counterpart.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `use rayon::prelude::*` convenience.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..500).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owns() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| format!("v{x}"))
            .collect();
        assert_eq!(out, vec!["v1", "v2", "v3"]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn scope_spawn_joins() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 8);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_high_water_is_recorded() {
        let _: Vec<u32> = (0u32..64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x)
            .collect();
        let used = super::max_workers_used();
        assert!(used >= 1);
        assert!(used <= super::current_num_threads());
    }
}
