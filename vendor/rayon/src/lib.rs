//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of the rayon API it uses: `par_iter()` / `into_par_iter()`
//! with `map(...).collect::<Vec<_>>()`, [`join`], [`scope`], and
//! [`current_num_threads`]. Parallelism is real — a shared atomic work
//! cursor over `std::thread::scope` workers, one worker per available core —
//! only the work-stealing scheduler and the full adapter zoo are missing.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of worker threads used by the parallel bridges.
///
/// Honors `RAYON_NUM_THREADS` (like real rayon's global pool) when set to
/// a positive integer — the knob that lets single-core containers still
/// exercise (and report) multi-worker sharding — and falls back to the
/// machine's available parallelism. Read once; later env changes are
/// ignored, matching rayon's build-once global pool.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Process-wide high-water mark of workers engaged by the `join` and
/// `map`/`collect` bridges (spawns inside a raw [`scope`] are not
/// counted). Not in real rayon — the shim exposes it so reports can
/// record the pool size genuinely *used* by a run rather than the
/// machine's theoretical parallelism: a 1-item map on a 64-core box
/// engages one worker, and that is what this returns. Being a process
/// global, it reflects the widest stage of the whole process so far, not
/// the most recent invocation — callers that need per-invocation
/// attribution use [`worker_scope`] instead.
pub fn max_workers_used() -> usize {
    MAX_WORKERS_USED.load(Ordering::Relaxed)
}

static MAX_WORKERS_USED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Worker-accounting scopes active on this thread, innermost last.
    /// Workers spawned by the parallel bridges inherit the spawning
    /// thread's stack, so a nested bridge running *on a worker thread*
    /// (e.g. a per-file sweep inside a batch dispatch) still attributes
    /// its width to the enclosing invocation's scope.
    static ACTIVE_SCOPES: RefCell<Vec<Arc<AtomicUsize>>> = const { RefCell::new(Vec::new()) };
}

/// Per-invocation worker high-water mark — the scoped counterpart of the
/// process-global [`max_workers_used`].
///
/// A report that runs *after* any earlier parallel stage (a daemon batch
/// dispatch, a tuner pass) must not inherit that stage's width; entering a
/// scope around the invocation confines the accounting to the bridges it
/// (and its workers, transitively) actually engage. Scopes nest: every
/// active scope on the engaging thread's inheritance chain observes the
/// width.
pub struct WorkerScope {
    high_water: Arc<AtomicUsize>,
}

/// Enters a worker-accounting scope on the current thread. Dropping the
/// returned handle leaves the scope.
pub fn worker_scope() -> WorkerScope {
    let high_water = Arc::new(AtomicUsize::new(0));
    ACTIVE_SCOPES.with(|s| s.borrow_mut().push(high_water.clone()));
    WorkerScope { high_water }
}

impl WorkerScope {
    /// Widest bridge engaged since the scope was entered; at least 1, so
    /// a run that never hit a parallel bridge reports one worker (the
    /// calling thread itself).
    pub fn max_workers_used(&self) -> usize {
        self.high_water.load(Ordering::Relaxed).max(1)
    }
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        ACTIVE_SCOPES.with(|s| {
            let mut v = s.borrow_mut();
            if let Some(i) = v.iter().rposition(|a| Arc::ptr_eq(a, &self.high_water)) {
                v.remove(i);
            }
        });
    }
}

/// Records an engaged bridge width against the process-global high water
/// and every scope active on the calling thread.
fn note_workers(n: usize) {
    MAX_WORKERS_USED.fetch_max(n, Ordering::Relaxed);
    ACTIVE_SCOPES.with(|s| {
        for hw in s.borrow().iter() {
            hw.fetch_max(n, Ordering::Relaxed);
        }
    });
}

/// Snapshot of the calling thread's scope stack, for worker inheritance.
fn inherited_scopes() -> Vec<Arc<AtomicUsize>> {
    ACTIVE_SCOPES.with(|s| s.borrow().clone())
}

/// Installs an inherited scope stack on a freshly spawned worker thread.
fn adopt_scopes(scopes: &[Arc<AtomicUsize>]) {
    ACTIVE_SCOPES.with(|s| *s.borrow_mut() = scopes.to_vec());
}

/// Runs `a` and `b` potentially in parallel, returning both results.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if current_num_threads() > 1 {
        note_workers(2);
    }
    let scopes = inherited_scopes();
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            adopt_scopes(&scopes);
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Task scope: `scope(|s| { s.spawn(...); ... })`.
pub fn scope<'env, R>(f: impl for<'scope> FnOnce(&Scope<'scope, 'env>) -> R) -> R {
    std::thread::scope(|std_scope| {
        let s = Scope {
            std_scope,
            scopes: inherited_scopes(),
        };
        f(&s)
    })
}

/// Scope handle for spawning parallel tasks.
pub struct Scope<'scope, 'env> {
    std_scope: &'scope std::thread::Scope<'scope, 'env>,
    scopes: Vec<Arc<AtomicUsize>>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns a task; the scope waits for it before returning.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, '_>) + Send + 'scope,
    {
        let std_scope = self.std_scope;
        let scopes = self.scopes.clone();
        std_scope.spawn(move || {
            adopt_scopes(&scopes);
            let inner = Scope {
                std_scope,
                scopes: scopes.clone(),
            };
            f(&inner);
        });
    }
}

/// Parallel counterpart of [`Iterator`] (map/collect subset).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` in parallel, preserving order.
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Pending parallel map.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Executes the map over a worker pool and collects in input order.
    pub fn collect<C: FromParallel<I, F>>(self) -> C {
        C::from_parallel(self)
    }
}

/// Collection types buildable from a [`ParMap`].
pub trait FromParallel<I, F>: Sized {
    /// Runs the parallel map and gathers results.
    fn from_parallel(pm: ParMap<I, F>) -> Self;
}

impl<I: Send, O: Send, F: Fn(I) -> O + Sync> FromParallel<I, F> for Vec<O> {
    fn from_parallel(pm: ParMap<I, F>) -> Vec<O> {
        let ParMap { items, f } = pm;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Move items into Option slots so workers can take them by index.
        let slots: Vec<std::sync::Mutex<Option<I>>> = items
            .into_iter()
            .map(|x| std::sync::Mutex::new(Some(x)))
            .collect();
        let out: Vec<std::sync::Mutex<Option<O>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = current_num_threads().min(n);
        note_workers(workers);
        let scopes = inherited_scopes();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    adopt_scopes(&scopes);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("poisoned slot")
                            .take()
                            .expect("slot taken twice");
                        let r = f(item);
                        *out[i].lock().expect("poisoned result") = Some(r);
                    }
                });
            }
        });
        out.into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("poisoned result")
                    .expect("worker skipped an item")
            })
            .collect()
    }
}

/// Types with a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send;
    /// `iter()` counterpart.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// `into_iter()` counterpart.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `use rayon::prelude::*` convenience.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..500).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owns() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| format!("v{x}"))
            .collect();
        assert_eq!(out, vec!["v1", "v2", "v3"]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn scope_spawn_joins() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 8);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_high_water_is_recorded() {
        let _: Vec<u32> = (0u32..64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x)
            .collect();
        let used = super::max_workers_used();
        assert!(used >= 1);
        assert!(used <= super::current_num_threads());
    }

    /// A scope only observes bridges engaged inside it — a wide stage run
    /// *before* the scope must not leak into its high water, which is the
    /// `meta.threads` over-reporting bug this API exists to fix.
    #[test]
    fn worker_scope_ignores_earlier_stages() {
        let _: Vec<u32> = (0u32..64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x)
            .collect();
        let scope = super::worker_scope();
        assert_eq!(scope.max_workers_used(), 1, "no bridge engaged yet");
        let _: Vec<u32> = vec![7].into_par_iter().map(|x| x).collect();
        assert_eq!(scope.max_workers_used(), 1, "1-item map engages 1 worker");
        drop(scope);
    }

    /// Nested bridges running on worker threads attribute their width to
    /// the enclosing scope (the batch-dispatch → per-file-sweep shape).
    #[test]
    fn worker_scope_sees_nested_bridges() {
        let scope = super::worker_scope();
        let _: Vec<usize> = (0..4usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                let inner: Vec<u32> = (0u32..8)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(|x| x)
                    .collect();
                inner.len()
            })
            .collect();
        let w = scope.max_workers_used();
        assert!(w >= 4.min(super::current_num_threads()), "outer width seen");
        drop(scope);

        // And a fresh scope afterwards starts clean again.
        let fresh = super::worker_scope();
        assert_eq!(fresh.max_workers_used(), 1);
    }
}
