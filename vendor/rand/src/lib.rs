//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`rngs::StdRng`]. The backend
//! is xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is all the tests and benchmarks rely on (they never
//! depend on the exact stream of the upstream `StdRng`).

/// Integer / float ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

/// Minimal core-RNG object-safe interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline replacement for the
    /// upstream `StdRng`; the stream differs, determinism does not).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// `use rand::prelude::*` convenience.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(0..4096usize);
            assert!(v < 4096);
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
