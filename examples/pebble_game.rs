//! Plays the red-white pebble game on the exact CDAG of a small MGS
//! instance, comparing the LRU and farthest-next-use spill policies across
//! red budgets.
//!
//! Run with `cargo run --example pebble_game`.

use hourglass_iolb::cdag::{build_cdag, PebbleGame, SpillPolicy};
use hourglass_iolb::kernels;

fn main() {
    let program = kernels::mgs::program();
    let params = [20i64, 10];
    let g = build_cdag(&program, &params);
    println!(
        "MGS M=20 N=10: CDAG with {} compute nodes, {} inputs, {} edges",
        g.num_computes(),
        g.input_nodes().count(),
        g.num_edges()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "S", "LRU loads", "MIN loads", "MIN/LRU"
    );
    let smin = g.max_in_degree() + 1;
    for s in [smin, smin + 8, smin + 24, smin + 56, smin + 120] {
        let game = PebbleGame::new(&g, s);
        let lru = game.play_program_order(SpillPolicy::Lru).expect("play");
        let min = game
            .play_program_order(SpillPolicy::MinNextUse)
            .expect("play");
        println!(
            "{:>6} {:>12} {:>12} {:>10.3}",
            s,
            lru.loads,
            min.loads,
            min.loads as f64 / lru.loads as f64
        );
        assert!(min.loads <= lru.loads);
    }
}
