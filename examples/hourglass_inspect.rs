//! Inspects the hourglass pattern (§3.2) detected on each kernel: the
//! temporal / neutral / reduction-broadcast dimension partition, the
//! reduction statement, the parametric width, and the certification of the
//! dependency-chain property on an exact CDAG.
//!
//! Run with `cargo run --example hourglass_inspect`.

use hourglass_iolb::core::{hourglass, Analysis};
use hourglass_iolb::kernels;

fn main() {
    let cases: Vec<(iolb_ir::Program, &str, Vec<i64>)> = vec![
        (kernels::mgs::program(), "SU", vec![9, 6]),
        (kernels::householder::a2v_program(), "SU", vec![9, 6]),
        (kernels::householder::v2q_program(), "SU", vec![9, 6]),
        (kernels::gebd2::program(), "SU", vec![9, 6]),
        (kernels::gehd2::program(), "SU1", vec![9]),
        (kernels::gemm::program(), "SU", vec![5, 6, 4]),
    ];
    for (program, stmt_name, params) in cases {
        let analysis = Analysis::run(&program, std::slice::from_ref(&params)).expect("analysis");
        let stmt = program.stmt_id(stmt_name).unwrap();
        let dim_name = |d: &iolb_ir::DimId| program.loop_info(*d).name.clone();
        print!("{:<12} ", program.name);
        match analysis.detect_hourglass(stmt) {
            None => println!("no hourglass (expected for gemm)"),
            Some(pat) => {
                let b = hourglass::derive(&program, &pat, &hourglass::SplitChoice::None);
                let checked = hourglass::certify(&program, &pat, &params).expect("chain property");
                println!(
                    "temporal {:?}  neutral {:?}  rb {:?}  reduction {}  W ∈ [{}, {}]  ({checked} chains certified)",
                    pat.temporal.iter().map(dim_name).collect::<Vec<_>>(),
                    pat.neutral.iter().map(dim_name).collect::<Vec<_>>(),
                    pat.rb.iter().map(dim_name).collect::<Vec<_>>(),
                    program.stmt(pat.reduction_stmt).name,
                    b.w_min,
                    b.w_max,
                );
            }
        }
    }
}
