//! Derives old and new bounds for all five paper kernels and prints the
//! Figure-4/Figure-5 style tables.
//!
//! Run with `cargo run --example derive_bounds`.

use hourglass_iolb::core::report::{analyze_kernel, fig4_table, fig5_table};
use hourglass_iolb::kernels;

fn main() {
    let kernels: Vec<(iolb_ir::Program, &str, &str)> = vec![
        (kernels::mgs::program(), "MGS", "SU"),
        (kernels::householder::a2v_program(), "QR HH A2V", "SU"),
        (kernels::householder::v2q_program(), "QR HH V2Q", "SU"),
        (kernels::gebd2::program(), "GEBD2", "SU"),
        (kernels::gehd2::program(), "GEHD2", "SU1"),
    ];
    let reports: Vec<_> = kernels
        .iter()
        .map(|(p, name, stmt)| analyze_kernel(p, name, stmt).expect("derivation"))
        .collect();
    println!("{}", fig4_table(&reports));
    println!("{}", fig5_table(&reports));
}
