//! Quickstart: derive the paper's MGS bounds automatically and validate
//! them against a red-white pebble game play.
//!
//! Run with `cargo run --example quickstart`.

use hourglass_iolb::prelude::*;
use hourglass_iolb::{cdag, core, kernels};

fn main() {
    // 1. The kernel: right-looking Modified Gram-Schmidt (paper Fig. 1).
    let program = kernels::mgs::program();

    // 2. Automatic derivation: classical K-partitioning ("old") plus the
    //    hourglass-tightened bound ("new").
    let report = analyze_kernel(&program, "MGS", "SU").expect("derivation");
    println!("kernel: MGS (Figure 1)");
    println!("  Brascamp-Lieb exponent σ = {}", report.old.sigma);
    println!("  old bound: {}", report.old.expr);
    println!("  hourglass width W = {}", report.new.w_min);
    println!("  new bound: {}", report.new.main_tool);

    // 3. Evaluate both at concrete sizes: the parametric improvement.
    let env = |m: i128, n: i128, s: i128| {
        vec![(Var::new("M"), m), (Var::new("N"), n), (core::s_var(), s)]
    };
    for (m, n, s) in [(4096i128, 512i128, 256i128), (4096, 512, 2048)] {
        let old = report.old.expr.eval_ints_f64(&env(m, n, s));
        let new = report.new.main_tool.eval_ints_f64(&env(m, n, s));
        println!(
            "  M={m:>6} N={n:>4} S={s:>5}: old {old:>14.3e}  new {new:>14.3e}  gain ×{:.1}",
            new / old
        );
    }

    // 4. Soundness check on an exact CDAG: a legal pebble-game play can
    //    never use fewer loads than the bound.
    let params = [24i64, 8];
    let g = cdag::build_cdag(&program, &params);
    let s = 16usize;
    let play = PebbleGame::new(&g, s)
        .play_program_order(SpillPolicy::MinNextUse)
        .expect("legal play");
    let lb = report
        .new
        .eval_floor(&[(Var::new("M"), 24), (Var::new("N"), 8)], s as i128);
    println!("\npebble validation at M=24 N=8 S={s}:");
    println!("  lower bound {lb:.0} ≤ measured loads {} ✓", play.loads);
    assert!(lb <= play.loads as f64);
}
