//! Measures the I/O of the paper's tiled MGS ordering (Fig. 8) in the
//! two-level cache simulator and compares it against the Appendix A.1 cost
//! model and the hourglass lower bound (the upper/lower sandwich that
//! proves tightness).
//!
//! Run with `cargo run --release --example tiled_io_sweep`.

use hourglass_iolb::kernels::{self, Matrix};
use hourglass_iolb::prelude::*;

fn main() {
    let (m, n) = (64usize, 32usize);
    let a = Matrix::random(m, n, 1);
    let report = analyze_kernel(&kernels::mgs::program(), "MGS", "SU").expect("derivation");
    let tiled = kernels::mgs::tiled_program();
    println!("tiled MGS I/O sweep (M={m}, N={n}):");
    println!(
        "{:>7} {:>4} {:>12} {:>12} {:>12} {:>12}",
        "S", "B", "LRU loads", "MIN loads", "model", "lower bound"
    );
    for s in [192usize, 256, 384, 512, 768, 1024] {
        let block = kernels::mgs::a1_block_size(m, s);
        let params = [m as i64, n as i64, block as i64];
        let data = a.data.clone();
        let lru = kernels::sinks::measure_lru_io(&tiled, &params, s, move |arr, f| {
            if arr.0 == 0 {
                data[f]
            } else {
                0.0
            }
        });
        let data = a.data.clone();
        let min = kernels::sinks::measure_min_io(&tiled, &params, s, move |arr, f| {
            if arr.0 == 0 {
                data[f]
            } else {
                0.0
            }
        });
        let lb = report.new.combined.eval_ints_f64(&[
            (Var::new("M"), m as i128),
            (Var::new("N"), n as i128),
            (hourglass_iolb::core::s_var(), s as i128),
        ]);
        println!(
            "{:>7} {:>4} {:>12} {:>12} {:>12.0} {:>12.0}",
            s,
            block,
            lru.loads,
            min.loads,
            kernels::mgs::a1_reads_model(m, n, block),
            lb
        );
        assert!(lb <= min.loads as f64, "lower bound must hold");
    }
    println!("\nlower bound ≤ measured I/O everywhere; measured tracks the ½MN²/B model ✓");
}
